"""Host-machine model configuration.

The paper measures wall-clock simulation time of SlackSim running as nine
POSIX threads on a two-socket quad-core Xeon (eight hardware contexts).
Python's GIL makes a real-thread port meaningless, so this reproduction
models the host explicitly: simulation threads are scheduled onto
``HostConfig.num_contexts`` modeled contexts and every unit of simulation
work is charged modeled nanoseconds from :class:`HostCostModel`.  "Simulation
time" reported by a run is the largest modeled context clock at the end.

The default constants are calibrated (see DESIGN.md section 5) so that a
detailed OoO core model costs a few microseconds per simulated cycle and a
barrier episode costs futex-scale tens of microseconds — the regime in which
the paper's CC/SU speedup of 2-3x arises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class HostCostModel:
    """Modeled host-time costs, in nanoseconds, for simulation work.

    Per-step costs are multiplied by ``(1 + jitter)`` where jitter is a
    deterministic, seeded, zero-mean perturbation of amplitude
    ``jitter_frac`` — this models OS noise and host cache effects, and is
    what makes simulation threads drift apart in host time (the raw material
    of simulation violations).
    """

    # --- core-thread costs -------------------------------------------------
    core_cycle_ns: float = 6000.0  # simulate one active target cycle
    stall_cycle_ns: float = 5000.0  # simulate one fully stalled target cycle
    per_instruction_ns: float = 1500.0  # per committed instruction
    per_mem_event_ns: float = 3000.0  # allocate/fill OutQ entry, consume InQ
    slack_check_ns: float = 100.0  # read shared max-local-time per cycle

    # --- manager-thread costs ----------------------------------------------
    manager_cycle_ns: float = 1000.0  # manager bookkeeping per service step
    per_gq_event_ns: float = 4000.0  # process one GQ event (bus + L2 + map)
    adaptive_adjust_ns: float = 20000.0  # one slack-throttle episode
    violation_tracking_ns: float = 800.0  # per GQ event when detection is on

    # --- synchronization costs ----------------------------------------------
    barrier_ns: float = 8000.0  # per thread per barrier episode (futex)
    wake_latency_ns: float = 5000.0  # manager update -> blocked thread resumes
    context_switch_ns: float = 5000.0  # threads multiplexed on one context

    # --- checkpoint / rollback costs (fork + copy-on-write model) ----------
    # The paper measured ~230 ms per fork checkpoint against 12.5 M-cycle
    # runs; scaled to this reproduction's ~10-50 k-cycle runs (see
    # EXPERIMENTS.md) the same *relative* overhead shape lands around 8 ms
    # per checkpoint plus a COW term.
    checkpoint_base_ns: float = 8e6  # fork() + waitpid() etc.
    checkpoint_per_page_ns: float = 20000.0  # one COW fault per touched page
    rollback_ns: float = 4e6  # child exit + parent wake

    # --- noise ---------------------------------------------------------------
    jitter_frac: float = 0.25

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"host cost {name} must be >= 0, got {value}")
        if self.jitter_frac >= 1.0:
            raise ConfigError("jitter_frac must be < 1.0")


@dataclass(frozen=True)
class HostConfig:
    """The modeled host CMP running the parallel simulation.

    ``num_contexts`` hardware thread contexts execute the C core threads and
    the manager thread.  As in the paper (9 threads on 8 contexts), when
    there are more simulation threads than contexts, threads share contexts
    round-robin and pay ``context_switch_ns`` on every handoff.
    """

    num_contexts: int = 8
    cost: HostCostModel = HostCostModel()
    seed: int = 0xC0FFEE
    # Max target cycles a core thread may simulate in one scheduling step.
    # Smaller values track host-time interleaving more finely (more faithful
    # event-arrival ordering) at higher interpreter overhead.
    max_batch_cycles: int = 8
    # Max fully-stalled cycles fast-forwarded in one jump.  The host cost
    # model charges these per cycle, so only interleaving granularity (not
    # modeled time) is affected.
    max_stall_batch: int = 16
    # Host time the manager idles before re-polling when it finds no work.
    manager_poll_ns: float = 2000.0
    # Whether the OS load-balances the manager thread across contexts when
    # there are more simulation threads than contexts (the realistic
    # default).  False pins the manager to its round-robin context, which
    # starves the core thread sharing it — ablation A3 measures the
    # resulting drift pathology.
    manager_migrates: bool = True
    # Hierarchical manager (paper section 2: "if the manager thread
    # becomes a bottleneck, then it should be organized hierarchically").
    # 0 = the paper's single manager; N > 0 adds N sub-manager threads
    # that each consolidate one group of cores' OutQs (and pay the
    # per-event handling cost) before the top manager serves the bus/L2.
    num_submanagers: int = 0

    def __post_init__(self) -> None:
        if self.num_contexts <= 0:
            raise ConfigError("num_contexts must be positive")
        if self.max_batch_cycles <= 0:
            raise ConfigError("max_batch_cycles must be positive")
        if self.max_stall_batch <= 0:
            raise ConfigError("max_stall_batch must be positive")
        if self.manager_poll_ns <= 0:
            raise ConfigError("manager_poll_ns must be positive")
        if self.num_submanagers < 0:
            raise ConfigError("num_submanagers must be >= 0")
