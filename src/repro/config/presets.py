"""Preset configurations matching the paper's experimental setup.

``paper_target_config()`` is the section-2.1 target: an 8-core CMP with
16 KB I/D L1s, a 256 KB shared L2 at 8 clocks, 100-clock L2 misses, and MESI
over a request/response bus.  ``paper_host_config()`` is the two-socket
quad-core Xeon host (8 contexts) carrying 9 simulation threads.

``quick_target_config()`` shrinks the caches further for fast unit tests.
"""

from __future__ import annotations

from repro.config.host import HostConfig
from repro.config.target import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    L2Config,
    TargetConfig,
)


def paper_target_config(num_cores: int = 8) -> TargetConfig:
    """The target CMP of the paper's evaluation (section 2.1)."""
    return TargetConfig(
        num_cores=num_cores,
        core=CoreConfig(issue_width=4, window_size=64, num_mshrs=8),
        l1i=CacheConfig(size=16 * 1024, line_size=32, associativity=4, hit_latency=1),
        l1d=CacheConfig(size=16 * 1024, line_size=32, associativity=4, hit_latency=1),
        bus=BusConfig(request_cycles=1, response_cycles=2, arbitration_latency=1),
        l2=L2Config(
            cache=CacheConfig(size=256 * 1024, line_size=32, associativity=8, hit_latency=8),
            num_banks=1,
            miss_latency=100,
        ),
    )


def paper_host_config(seed: int = 0xC0FFEE) -> HostConfig:
    """The paper's host: 8 hardware contexts for 9 simulation threads."""
    return HostConfig(num_contexts=8, seed=seed)


def quick_target_config(num_cores: int = 4) -> TargetConfig:
    """A deliberately tiny target for fast unit tests."""
    return TargetConfig(
        num_cores=num_cores,
        core=CoreConfig(issue_width=2, window_size=16, num_mshrs=4),
        l1i=CacheConfig(size=1024, line_size=32, associativity=2),
        l1d=CacheConfig(size=1024, line_size=32, associativity=2),
        l2=L2Config(
            cache=CacheConfig(size=4096, line_size=32, associativity=4, hit_latency=8),
            miss_latency=100,
        ),
    )
