"""Configuration dataclasses for target CMP, host model, and slack schemes.

Everything a simulation run depends on is an explicit, validated dataclass;
``repro.config.presets`` builds the exact configurations used in the paper's
evaluation (8-core CMP, Table 1 benchmarks, 8-context Xeon-like host).
"""

from repro.config.target import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    L2Config,
    MemoryConfig,
    TargetConfig,
)
from repro.config.host import HostConfig, HostCostModel
from repro.config.schemes import (
    VIOLATION_TYPES,
    AdaptiveConfig,
    AdaptiveQuantumConfig,
    CheckpointConfig,
    P2PConfig,
    QuantumConfig,
    SchemeConfig,
    SlackConfig,
    SpeculativeConfig,
)
from repro.config.presets import (
    paper_host_config,
    paper_target_config,
    quick_target_config,
)

__all__ = [
    "BusConfig",
    "CacheConfig",
    "CoreConfig",
    "L2Config",
    "MemoryConfig",
    "TargetConfig",
    "HostConfig",
    "HostCostModel",
    "SchemeConfig",
    "SlackConfig",
    "QuantumConfig",
    "AdaptiveConfig",
    "AdaptiveQuantumConfig",
    "CheckpointConfig",
    "SpeculativeConfig",
    "P2PConfig",
    "VIOLATION_TYPES",
    "paper_target_config",
    "paper_host_config",
    "quick_target_config",
]
