"""Slack-scheme configurations.

A scheme decides, at every point of the simulation, each core thread's
``max_local_time`` — i.e. how far ahead of the global time it may run.  The
paper's schemes:

- :class:`SlackConfig` with ``bound=0`` — cycle-by-cycle (the gold standard);
  with ``bound=b`` — bounded slack ``Sb``; with ``bound=None`` — unbounded
  slack ``SU``.
- :class:`QuantumConfig` — WWT-II-style barrier every ``quantum`` cycles
  (for comparison; section 1 and 6).
- :class:`AdaptiveConfig` — section 4's feedback loop (slack throttling).
- :class:`SpeculativeConfig` — section 5's checkpoint/rollback scheme layered
  on a base scheme.
- :class:`P2PConfig` — Graphite-style Lax-P2P random pairwise synchronization
  (section 6, flagged by the authors as worth exploring; implemented here as
  an extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigError

#: Violation-type names accepted by ``SpeculativeConfig.tracked`` and used
#: throughout ``repro.core.violations``.
VIOLATION_TYPES: Tuple[str, ...] = ("bus", "map")


@dataclass(frozen=True)
class SchemeConfig:
    """Base class for all scheme configurations."""

    @property
    def kind(self) -> str:
        """Short scheme identifier used in reports."""
        raise NotImplementedError


@dataclass(frozen=True)
class SlackConfig(SchemeConfig):
    """Fixed-slack scheme: cycle-by-cycle, bounded, or unbounded.

    ``bound=0`` reproduces cycle-by-cycle simulation, ``bound=b > 0`` keeps
    every core thread within ``b`` cycles of the global time, and
    ``bound=None`` removes synchronization entirely (unbounded slack).
    """

    bound: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.bound is not None and self.bound < 0:
            raise ConfigError(f"slack bound must be >= 0 or None, got {self.bound}")

    @property
    def kind(self) -> str:
        if self.bound is None:
            return "unbounded"
        return "cycle-by-cycle" if self.bound == 0 else f"slack-{self.bound}"

    @property
    def is_cycle_by_cycle(self) -> bool:
        return self.bound == 0


@dataclass(frozen=True)
class QuantumConfig(SchemeConfig):
    """Quantum simulation: all threads barrier every ``quantum`` cycles."""

    quantum: int = 1

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ConfigError(f"quantum must be positive, got {self.quantum}")

    @property
    def kind(self) -> str:
        return f"quantum-{self.quantum}"


@dataclass(frozen=True)
class AdaptiveConfig(SchemeConfig):
    """Adaptive slack (paper section 4).

    The manager keeps a windowed estimate of the simulation violation rate
    (violations per simulated cycle).  Whenever the estimate leaves the
    *violation band* ``[target_rate*(1-band), target_rate*(1+band)]`` the
    slack bound is throttled: decreased multiplicatively when too many
    violations occur, increased additively when too few do.
    """

    target_rate: float = 1e-4  # paper's baseline: 0.01% = one per 10k cycles
    band: float = 0.05  # 5% violation band
    initial_bound: int = 1
    min_bound: int = 1
    max_bound: int = 4096
    adjust_period: int = 500  # global cycles between control decisions
    increase_step: int = 2
    decrease_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.target_rate <= 0:
            raise ConfigError("target_rate must be positive")
        if self.band < 0:
            raise ConfigError("band must be >= 0")
        if not (1 <= self.min_bound <= self.initial_bound <= self.max_bound):
            raise ConfigError(
                "need 1 <= min_bound <= initial_bound <= max_bound, got "
                f"{self.min_bound}/{self.initial_bound}/{self.max_bound}"
            )
        if self.adjust_period <= 0:
            raise ConfigError("adjust_period must be positive")
        if self.increase_step <= 0:
            raise ConfigError("increase_step must be positive")
        if not 0 < self.decrease_factor < 1:
            raise ConfigError("decrease_factor must be in (0, 1)")

    @property
    def kind(self) -> str:
        return f"adaptive-{self.target_rate:g}-band{self.band:g}"


@dataclass(frozen=True)
class AdaptiveQuantumConfig(SchemeConfig):
    """Traffic-driven adaptive quantum (Falcon et al. [9], paper section 6).

    The related-work baseline the paper contrasts with its violation-driven
    adaptive slack: the barrier quantum grows while little traffic is
    exchanged and shrinks as traffic increases, using the *event rate* —
    an indirect proxy for error — instead of the violation rate.
    """

    initial_quantum: int = 8
    min_quantum: int = 1
    max_quantum: int = 512
    low_traffic: float = 0.05  # events/cycle below which the quantum grows
    high_traffic: float = 0.20  # events/cycle above which it shrinks
    adjust_period: int = 250

    def __post_init__(self) -> None:
        if not (1 <= self.min_quantum <= self.initial_quantum <= self.max_quantum):
            raise ConfigError(
                "need 1 <= min_quantum <= initial_quantum <= max_quantum"
            )
        if not 0 <= self.low_traffic <= self.high_traffic:
            raise ConfigError("need 0 <= low_traffic <= high_traffic")
        if self.adjust_period <= 0:
            raise ConfigError("adjust_period must be positive")

    @property
    def kind(self) -> str:
        return f"adaptive-quantum-{self.initial_quantum}"


@dataclass(frozen=True)
class CheckpointConfig:
    """Periodic global checkpointing (paper section 5.1).

    ``interval`` is the checkpoint interval in simulated cycles.  When
    attached to a non-speculative run it measures pure checkpointing
    overhead, which is how the paper's Table 2 columns 5K-100K were produced.
    """

    interval: int = 50_000

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigError("checkpoint interval must be positive")


@dataclass(frozen=True)
class SpeculativeConfig(SchemeConfig):
    """Full speculative slack simulation (paper section 5).

    Layered on a base scheme (the paper recommends, and defaults to, an
    adaptive scheme with a 0.01% target rate).  Checkpoints are taken every
    ``checkpoint.interval`` cycles; whenever a violation whose type is in
    ``tracked`` is detected, the whole simulation rolls back to the previous
    checkpoint and replays in cycle-by-cycle mode until the next checkpoint
    boundary (forward progress), then resumes the base scheme.
    """

    base: SchemeConfig = field(default_factory=AdaptiveConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    tracked: Tuple[str, ...] = VIOLATION_TYPES

    def __post_init__(self) -> None:
        if isinstance(self.base, SpeculativeConfig):
            raise ConfigError("speculative schemes cannot be nested")
        unknown = set(self.tracked) - set(VIOLATION_TYPES)
        if unknown:
            raise ConfigError(f"unknown violation types: {sorted(unknown)}")
        if not self.tracked:
            raise ConfigError("speculative scheme must track at least one violation type")

    @property
    def kind(self) -> str:
        return f"speculative[{self.base.kind}]@{self.checkpoint.interval}"


@dataclass(frozen=True)
class P2PConfig(SchemeConfig):
    """Lax-P2P: each core periodically syncs with a random peer (Graphite).

    Every ``period`` cycles a core thread picks a random other core and, if
    it is more than ``max_lead`` cycles ahead of that peer, waits for the
    peer to catch up.  This is the section-6 scheme the authors planned to
    explore; included as an extension experiment (E2 in DESIGN.md).
    """

    period: int = 100
    max_lead: int = 100

    def __post_init__(self) -> None:
        if self.period <= 0 or self.max_lead <= 0:
            raise ConfigError("P2P period and max_lead must be positive")

    @property
    def kind(self) -> str:
        return f"p2p-{self.period}/{self.max_lead}"
