"""Target-CMP configuration (the machine being simulated).

The defaults mirror the paper's section 2.1: an 8-core CMP, each core a
4-way-issue out-of-order processor with up to 64 in-flight instructions,
16 KB I/D L1 caches, a 256 KB shared L2 with an 8-clock access latency, a
100-clock L2 miss latency, and MESI coherence over a request/response
snooping bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError
from repro.util import is_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing for one cache level.

    Sizes are in bytes.  ``line_size`` must be a power of two; the number of
    sets (``size / (line_size * associativity)``) must also be a power of two
    so that set indexing is a simple shift/mask, as in real hardware.
    """

    size: int = 16 * 1024
    line_size: int = 32
    associativity: int = 4
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0 or self.associativity <= 0 or self.hit_latency < 0:
            raise ConfigError(f"invalid cache parameters: {self}")
        if not is_power_of_two(self.line_size):
            raise ConfigError(f"line_size must be a power of two, got {self.line_size}")
        if self.size % (self.line_size * self.associativity) != 0:
            raise ConfigError(
                f"cache size {self.size} not divisible by "
                f"line_size*associativity ({self.line_size}*{self.associativity})"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigError(f"number of sets must be a power of two, got {self.num_sets}")

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.size // (self.line_size * self.associativity)

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size // self.line_size


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (NetBurst-like per the paper).

    ``model_icache=True`` adds an instruction-fetch model: the committed
    stream walks a shared wrapping code region of ``code_footprint`` bytes
    and fetch stalls on L1I misses (filled over the snooping bus like any
    read-shared line).  Off by default: with the paper's 16 KB L1I and
    loop-dominated kernels the steady-state I-miss rate is negligible, and
    the flat model keeps the calibrated cost baselines unchanged.
    """

    issue_width: int = 4
    window_size: int = 64  # max in-flight instructions (ROB entries)
    num_mshrs: int = 8  # outstanding L1 misses (lock-up-free L1)
    int_alu_latency: int = 1
    mul_latency: int = 3
    fp_latency: int = 4
    fdiv_latency: int = 12
    model_icache: bool = False
    code_footprint: int = 8 * 1024  # static code size walked by fetch
    instruction_bytes: int = 8  # SimpleScalar PISA encoding

    def __post_init__(self) -> None:
        if self.issue_width <= 0 or self.window_size <= 0 or self.num_mshrs <= 0:
            raise ConfigError(f"invalid core parameters: {self}")
        for name in ("int_alu_latency", "mul_latency", "fp_latency", "fdiv_latency"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.code_footprint <= 0 or self.instruction_bytes <= 0:
            raise ConfigError("code_footprint and instruction_bytes must be positive")


@dataclass(frozen=True)
class BusConfig:
    """Request/response snooping bus.

    ``request_cycles`` is the bus occupancy of one snoop request;
    ``response_cycles`` is the occupancy of one data response (a cache line
    transfer).  Conflicts (two cores wanting the bus in the same cycle) are
    modeled, which is why the critical latency of a quantum simulation of
    this target would be one clock (paper section 1).
    """

    request_cycles: int = 1
    response_cycles: int = 2
    arbitration_latency: int = 1

    def __post_init__(self) -> None:
        if min(self.request_cycles, self.response_cycles) <= 0:
            raise ConfigError(f"bus occupancies must be positive: {self}")
        if self.arbitration_latency < 0:
            raise ConfigError("arbitration_latency must be >= 0")


@dataclass(frozen=True)
class L2Config:
    """Shared L2 cache (simulated by the manager thread).

    ``dram`` optionally replaces the flat 100-clock miss latency with an
    open-row DRAM model (see ``repro.memory.dram``); None keeps the
    paper's flat model.
    """

    cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=256 * 1024, line_size=32, associativity=8, hit_latency=8)
    )
    num_banks: int = 1
    miss_latency: int = 100  # paper: "The L2 miss latency is 100 clocks."
    dram: "Optional[object]" = None  # Optional[DramConfig]; avoids an import cycle

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ConfigError("num_banks must be positive")
        if self.miss_latency <= 0:
            raise ConfigError("miss_latency must be positive")


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory behind the L2 (flat latency; bandwidth unmodeled)."""

    page_size: int = 4096

    def __post_init__(self) -> None:
        if not is_power_of_two(self.page_size):
            raise ConfigError("page_size must be a power of two")


@dataclass(frozen=True)
class TargetConfig:
    """Complete target CMP: cores, L1s, bus, shared L2."""

    num_cores: int = 8
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(size=16 * 1024))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(size=16 * 1024))
    bus: BusConfig = field(default_factory=BusConfig)
    l2: L2Config = field(default_factory=L2Config)
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("num_cores must be positive")
        if self.l1d.line_size != self.l2.cache.line_size:
            raise ConfigError(
                "L1 and L2 line sizes must match "
                f"({self.l1d.line_size} != {self.l2.cache.line_size})"
            )

    @property
    def line_size(self) -> int:
        """Coherence granule (L1/L2 line size)."""
        return self.l1d.line_size
