"""Workload synchronization, executed inside the simulator.

As in SlackSim (which uses the parallel-programming APIs from
MP_Simplesim), workload locks and barriers are executed reliably by the
simulation manager rather than through simulated memory operations.  This
is why simulated-workload-state violations cannot occur (paper section 3):
the synchronization outcome is always functionally correct; only its
*timing* is subject to slack distortion.
"""

from repro.sync.primitives import BarrierTable, LockTable, SyncTimingConfig

__all__ = ["LockTable", "BarrierTable", "SyncTimingConfig"]
