"""Manager-side lock and barrier tables.

Grant decisions are made in *host arrival order* (the order the manager
dequeues requests), while grant timestamps are computed in target time —
the same duality that drives every other slack-simulation distortion.  The
functional outcome (mutual exclusion, barrier completeness) is always
correct.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError, SimulationError


@dataclass(frozen=True)
class SyncTimingConfig:
    """Target-time latencies of manager-executed synchronization."""

    lock_latency: int = 6  # uncontended acquire round-trip
    lock_handoff: int = 4  # release-to-next-grant delay
    barrier_latency: int = 12  # last-arrival to release delay

    def __post_init__(self) -> None:
        for name in ("lock_latency", "lock_handoff", "barrier_latency"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")


class _LockState:
    __slots__ = ("holder", "waiters")

    def __init__(self) -> None:
        self.holder: Optional[int] = None
        self.waiters: Deque[Tuple[int, int]] = deque()  # (core_id, request ts)


class LockTable:
    """All workload mutexes, granted FIFO in arrival order."""

    def __init__(self, timing: SyncTimingConfig) -> None:
        self.timing = timing
        self._locks: Dict[int, _LockState] = {}
        # Statistics
        self.acquires = 0
        self.contended_acquires = 0

    def _state(self, lock_id: int) -> _LockState:
        state = self._locks.get(lock_id)
        if state is None:
            state = _LockState()
            self._locks[lock_id] = state
        return state

    def acquire(self, lock_id: int, core_id: int, ts: int) -> Optional[int]:
        """Request the lock at target time ``ts``.

        Returns the grant timestamp if the lock was free, else None (the
        requester is queued and granted on a future release).
        """
        self.acquires += 1
        state = self._state(lock_id)
        if state.holder is None:
            state.holder = core_id
            return ts + self.timing.lock_latency
        if state.holder == core_id:
            raise SimulationError(f"core {core_id} re-acquired lock {lock_id}")
        self.contended_acquires += 1
        state.waiters.append((core_id, ts))
        return None

    def release(self, lock_id: int, core_id: int, ts: int) -> Optional[Tuple[int, int]]:
        """Release the lock at target time ``ts``.

        Returns ``(next_core, grant_ts)`` when a waiter takes over, else
        None.  The handoff grant time is target-causal: it cannot precede
        either the release or the waiter's own request.
        """
        state = self._locks.get(lock_id)
        if state is None or state.holder != core_id:
            raise SimulationError(
                f"core {core_id} released lock {lock_id} it does not hold"
            )
        if not state.waiters:
            state.holder = None
            return None
        next_core, req_ts = state.waiters.popleft()
        state.holder = next_core
        grant_ts = max(ts, req_ts) + self.timing.lock_handoff
        return next_core, grant_ts

    def holder_of(self, lock_id: int) -> Optional[int]:
        """Current holder of a lock (None when free or never used)."""
        state = self._locks.get(lock_id)
        return state.holder if state else None


class _BarrierState:
    __slots__ = ("arrived",)

    def __init__(self) -> None:
        self.arrived: List[Tuple[int, int]] = []  # (core_id, arrival ts)


class BarrierTable:
    """All workload barriers; reusable across phases (generational)."""

    def __init__(self, timing: SyncTimingConfig) -> None:
        self.timing = timing
        self._barriers: Dict[int, _BarrierState] = {}
        # Statistics
        self.episodes = 0

    def arrive(
        self, barrier_id: int, core_id: int, ts: int, participants: int
    ) -> Optional[List[Tuple[int, int]]]:
        """Register an arrival at target time ``ts``.

        When the arrival completes the barrier, returns
        ``[(core_id, release_ts), ...]`` for every participant (release is
        the max arrival time plus the barrier latency) and resets the
        barrier for its next generation.  Otherwise returns None.
        """
        state = self._barriers.get(barrier_id)
        if state is None:
            state = _BarrierState()
            self._barriers[barrier_id] = state
        for waiting_core, _ in state.arrived:
            if waiting_core == core_id:
                raise SimulationError(
                    f"core {core_id} arrived twice at barrier {barrier_id}"
                )
        state.arrived.append((core_id, ts))
        if len(state.arrived) < participants:
            return None
        release_ts = max(arrival for _, arrival in state.arrived) + self.timing.barrier_latency
        releases = [(waiting_core, release_ts) for waiting_core, _ in state.arrived]
        state.arrived.clear()
        self.episodes += 1
        return releases

    def waiting_at(self, barrier_id: int) -> List[int]:
        """Cores currently waiting at a barrier (deterministic order)."""
        state = self._barriers.get(barrier_id)
        return [core for core, _ in state.arrived] if state else []
