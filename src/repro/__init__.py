"""SlackSim reproduction: adaptive and speculative slack simulations of
CMPs on CMPs (Chen, Dabbiru, Annavaram, Dubois — MoBS 2010).

Quickstart::

    from repro import Simulation, SlackConfig
    from repro.workloads import make_workload

    workload = make_workload("fft", num_threads=8)
    gold = Simulation(workload, scheme=SlackConfig(bound=0)).run()   # cycle-by-cycle
    fast = Simulation(workload, scheme=SlackConfig(bound=None)).run()  # unbounded slack
    print(f"speedup {fast.speedup_over(gold):.2f}x, "
          f"error {fast.execution_time_error(gold):.2%}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import (
    AdaptiveConfig,
    AdaptiveQuantumConfig,
    BusConfig,
    CacheConfig,
    CheckpointConfig,
    CoreConfig,
    HostConfig,
    HostCostModel,
    L2Config,
    P2PConfig,
    QuantumConfig,
    SlackConfig,
    SpeculativeConfig,
    TargetConfig,
    paper_host_config,
    paper_target_config,
)
from repro.core import (
    Simulation,
    SimulationReport,
    SpeculativeModelInputs,
    speculative_time,
)
from repro.errors import (
    CheckpointError,
    ConfigError,
    DeadlockError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.telemetry import TelemetrySession
from repro.workloads import make_workload, paper_benchmarks

__version__ = "1.0.0"

__all__ = [
    # Facade
    "Simulation",
    "SimulationReport",
    # Schemes
    "SlackConfig",
    "QuantumConfig",
    "AdaptiveConfig",
    "AdaptiveQuantumConfig",
    "SpeculativeConfig",
    "CheckpointConfig",
    "P2PConfig",
    # Target / host configuration
    "TargetConfig",
    "CoreConfig",
    "CacheConfig",
    "BusConfig",
    "L2Config",
    "HostConfig",
    "HostCostModel",
    "paper_target_config",
    "paper_host_config",
    # Workloads
    "make_workload",
    "paper_benchmarks",
    # Analytical model
    "speculative_time",
    "SpeculativeModelInputs",
    # Observability
    "TelemetrySession",
    # Errors
    "ReproError",
    "ConfigError",
    "SimulationError",
    "DeadlockError",
    "WorkloadError",
    "CheckpointError",
    "ProtocolError",
    "__version__",
]
