"""Analytical performance model of speculative slack simulation.

Paper section 5.2::

    T_s = (1 - F) * T_cpt  +  F * D_r * T_cpt / I  +  F * T_cc

- ``T_s``   — estimated speculative-slack simulation time;
- ``T_cpt`` — simulation time of the (adaptive) slack scheme *with*
  periodic checkpointing;
- ``T_cc``  — cycle-by-cycle simulation time;
- ``F``     — fraction of checkpoint intervals with at least one violation;
- ``D_r``   — average rollback distance in simulated cycles (interval
  start to first violation);
- ``I``     — checkpoint interval in simulated cycles.

The first term is normal (violation-free) simulation, the second the
simulation work wasted by rollbacks, and the third the cycle-by-cycle
replay needed for forward progress.  The model omits the (secondary) cost
of the rollback itself and therefore slightly underestimates, as the paper
notes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class SpeculativeModelInputs:
    """Inputs to the section-5.2 analytical model."""

    t_cc: float  # cycle-by-cycle simulation time (any time unit)
    t_cpt: float  # slack-with-checkpointing simulation time (same unit)
    fraction_violating: float  # F, in [0, 1]
    rollback_distance: float  # D_r, simulated cycles
    interval: float  # I, simulated cycles

    def __post_init__(self) -> None:
        if self.t_cc < 0 or self.t_cpt < 0:
            raise ConfigError("simulation times must be non-negative")
        if not 0.0 <= self.fraction_violating <= 1.0:
            raise ConfigError(f"F must be in [0, 1], got {self.fraction_violating}")
        if self.interval <= 0:
            raise ConfigError("checkpoint interval must be positive")
        if not 0.0 <= self.rollback_distance <= self.interval:
            raise ConfigError(
                f"rollback distance {self.rollback_distance} outside [0, {self.interval}]"
            )


def speculative_time(inputs: SpeculativeModelInputs) -> float:
    """Evaluate ``T_s`` for the given inputs (same unit as ``t_cc``)."""
    f = inputs.fraction_violating
    normal = (1.0 - f) * inputs.t_cpt
    wasted = f * inputs.rollback_distance * inputs.t_cpt / inputs.interval
    replay = f * inputs.t_cc
    return normal + wasted + replay


def speedup_over_cc(inputs: SpeculativeModelInputs) -> float:
    """``T_cc / T_s``: > 1 means speculation beats cycle-by-cycle.

    The paper's Table 5 found this to be < 1 throughout its measured
    configurations — speculation only pays off when violations are rare.
    """
    t_s = speculative_time(inputs)
    if t_s == 0:
        raise ConfigError("estimated speculative time is zero")
    return inputs.t_cc / t_s
