"""Traffic-driven adaptive quantum (Falcon et al.; paper section 6).

The related-work baseline: a quantum (barrier) simulation whose quantum
size adapts to the amount of traffic in the target system — "the quantum
is increased when packets are not exchanged, and it is shortened as the
packet traffic increases".  Unlike the paper's adaptive *slack*, the
feedback signal is the event rate, an indirect proxy for error; the paper
argues (and experiment E5 measures) that the violation rate is the more
direct measure.

Service stays conservative (violation-free); the accuracy cost of a large
quantum is late delivery of coherence and synchronization effects.
"""

from __future__ import annotations

from typing import Optional

from repro.config.schemes import AdaptiveQuantumConfig
from repro.core.schemes.base import SchemePolicy
from repro.core.violations import ViolationDetector


class AdaptiveQuantumPolicy(SchemePolicy):
    """Quantum simulation with a traffic-throttled quantum size."""

    barrier_sync = True
    conservative_service = True

    def __init__(self, config: AdaptiveQuantumConfig) -> None:
        self.config = config
        self.quantum = config.initial_quantum
        self._last_control_time = 0
        self._last_events = 0
        # Statistics
        self.adjustments = 0
        self.history = [(0, config.initial_quantum)]

    @property
    def kind(self) -> str:
        return self.config.kind

    def window(self) -> Optional[int]:
        return self.quantum

    def control_tick(
        self, detector: ViolationDetector, global_time: int, events_served: int = 0
    ) -> bool:
        config = self.config
        elapsed = global_time - self._last_control_time
        if elapsed < config.adjust_period:
            return False
        traffic = (events_served - self._last_events) / elapsed
        self._last_control_time = global_time
        self._last_events = events_served

        new_quantum = self.quantum
        if traffic < config.low_traffic:
            new_quantum = min(config.max_quantum, self.quantum * 2)
        elif traffic > config.high_traffic:
            new_quantum = max(config.min_quantum, self.quantum // 2)
        if new_quantum == self.quantum:
            return False
        self.quantum = new_quantum
        self.adjustments += 1
        self.history.append((global_time, new_quantum))
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.on_window_adjust(self.kind, global_time, new_quantum)
        return True

    def pacing_violation(
        self, cores_view, global_time: int, capped: bool = False
    ) -> Optional[str]:
        config = self.config
        if not config.min_quantum <= self.quantum <= config.max_quantum:
            return (
                f"adaptive quantum {self.quantum} outside "
                f"[{config.min_quantum}, {config.max_quantum}]"
            )
        return super().pacing_violation(cores_view, global_time, capped)
