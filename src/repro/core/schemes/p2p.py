"""Lax-P2P synchronization (Graphite-style; paper section 6 extension).

Each core periodically picks a random other core and, if it is running more
than ``max_lead`` cycles ahead of that peer, waits for the peer to catch
up.  There is no global window: synchronization is pairwise and random,
which bounds *pairwise* drift probabilistically while avoiding any global
barrier or global-time dependency.

The paper's authors flag this scheme ("an interesting approach, which we
plan to explore further"); it is implemented here as extension experiment
E2 (see DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.schemes import P2PConfig
from repro.core.schemes.base import SchemePolicy
from repro.util import XorShift64


class P2PPolicy(SchemePolicy):
    """Random pairwise synchronization with per-core lead constraints."""

    barrier_sync = False
    conservative_service = False

    def __init__(self, config: P2PConfig, num_cores: int, seed: int) -> None:
        self.config = config
        self.num_cores = num_cores
        self.rng = XorShift64(seed ^ 0x9E3779B97F4A7C15)
        self._next_check: List[int] = [config.period] * num_cores
        self._peer: List[Optional[int]] = [None] * num_cores
        self._locals: List[int] = [0] * num_cores
        self._active: List[bool] = [True] * num_cores
        # Statistics
        self.checks = 0
        self.waits = 0

    @property
    def kind(self) -> str:
        return self.config.kind

    wants_core_clocks = True
    uniform_window = False  # per-core peer constraints

    def window(self) -> Optional[int]:
        return None  # no global window; constraints are per-core

    def on_global_advance(self, core_clocks) -> None:
        """Record the latest local times (peer constraints read them)."""
        for core_id, local, active in core_clocks:
            self._locals[core_id] = local
            self._active[core_id] = active

    def max_local_for(
        self, core_id: int, local_time: int, global_time: int
    ) -> Optional[int]:
        config = self.config
        if local_time >= self._next_check[core_id]:
            self.checks += 1
            self._next_check[core_id] = local_time + config.period
            if self.num_cores > 1:
                peer = self.rng.next_below(self.num_cores - 1)
                if peer >= core_id:
                    peer += 1
                self._peer[core_id] = peer
        peer = self._peer[core_id]
        if peer is None:
            return None
        if not self._active[peer]:
            # A finished or sync-blocked (descheduled) peer has a frozen
            # clock; waiting on it would deadlock.  Waive the constraint —
            # Graphite's LaxP2P likewise skips sleeping threads.
            self._peer[core_id] = None
            return None
        limit = self._locals[peer] + config.max_lead
        if limit > local_time:
            # Constraint satisfied; drop it until the next periodic check.
            self._peer[core_id] = None
            return None
        self.waits += 1
        return limit

    def pacing_violation(
        self, cores_view, global_time: int, capped: bool = False
    ) -> Optional[str]:
        """No global window, but every assigned limit derives from some
        peer's recorded local time plus ``max_lead`` — so no limit may
        exceed the fastest unfinished core's clock by more than the lead
        (recorded peer clocks only lag the live ones)."""
        if not capped:
            fastest = max(
                (
                    local
                    for _, local, _, finished, _ in cores_view
                    if not finished
                ),
                default=None,
            )
            if fastest is not None:
                cap = fastest + self.config.max_lead
                for core_id, _local, max_local, finished, _w in cores_view:
                    if finished or max_local is None:
                        continue
                    if max_local > cap:
                        return (
                            f"core {core_id} pairwise limit {max_local} "
                            f"exceeds fastest peer {fastest} + max_lead "
                            f"{self.config.max_lead}"
                        )
        return super().pacing_violation(cores_view, global_time, capped)
