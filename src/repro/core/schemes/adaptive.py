"""Adaptive slack simulation (paper section 4).

A feedback control loop ("slack throttling") keeps the measured simulation
violation rate at a preset target: the slack bound is increased (additively)
when violations are rare and decreased (multiplicatively) when they are
frequent.  No adjustment is made while the rate stays inside the *violation
band* around the target — the paper observes that wider bands yield shorter
simulation times because adjustments themselves cost host time.

The controlled variable is the cumulative violation rate — "the total
number of violations divided by the number of cycles", the paper's exact
definition.  Cumulative control self-stabilizes: after a burst at a raised
bound pushes the rate above the band, the controller throttles down and
waits for the cumulative rate to decay below the band before probing
upward again, so the long-run rate converges to the target without limit
cycling.  The violation rate is a convenient proxy for simulation error
that correlates well with execution-time error (paper section 4).
"""

from __future__ import annotations

from typing import Optional

from repro.config.schemes import AdaptiveConfig
from repro.core.schemes.base import SchemePolicy
from repro.core.violations import ViolationDetector


class AdaptiveSlackPolicy(SchemePolicy):
    """Bounded slack with a dynamically throttled bound."""

    barrier_sync = False
    conservative_service = False

    def __init__(self, config: AdaptiveConfig) -> None:
        self.config = config
        self.bound = config.initial_bound
        self.rate_estimate = 0.0
        self._last_control_time = 0
        # Statistics (bound-weighted integral for the average bound).
        self.adjustments = 0
        self.increases = 0
        self.decreases = 0
        self._bound_integral = 0.0
        self._integral_from = 0
        #: (global time, new bound) at every adjustment — the controller's
        #: trajectory, handy for plotting/debugging the feedback loop.
        self.history = [(0, config.initial_bound)]

    @property
    def kind(self) -> str:
        return self.config.kind

    def window(self) -> Optional[int]:
        return self.bound

    def control_tick(
        self, detector: ViolationDetector, global_time: int, events_served: int = 0
    ) -> bool:
        """Run one control decision if the adjust period has elapsed.

        Returns True when the bound actually changed (the host cost model
        charges ``adaptive_adjust_ns`` only then — the mechanism behind the
        paper's observation that a 0% violation band is slower than a 5%
        band).
        """
        config = self.config
        elapsed = global_time - self._last_control_time
        if elapsed < config.adjust_period:
            return False
        self._last_control_time = global_time
        detector.reset_window()
        rate = detector.rate(global_time)
        self.rate_estimate = rate
        lo = config.target_rate * (1.0 - config.band)
        hi = config.target_rate * (1.0 + config.band)
        new_bound = self.bound
        if rate > hi:
            new_bound = max(config.min_bound, int(self.bound * config.decrease_factor))
        elif rate < lo:
            new_bound = min(config.max_bound, self.bound + config.increase_step)
        if new_bound == self.bound:
            return False
        self._bound_integral += self.bound * (global_time - self._integral_from)
        self._integral_from = global_time
        if new_bound > self.bound:
            self.increases += 1
        else:
            self.decreases += 1
        self.adjustments += 1
        self.bound = new_bound
        self.history.append((global_time, new_bound))
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.on_window_adjust(self.kind, global_time, new_bound)
        return True

    def pacing_violation(
        self, cores_view, global_time: int, capped: bool = False
    ) -> Optional[str]:
        config = self.config
        if not config.min_bound <= self.bound <= config.max_bound:
            return (
                f"adaptive bound {self.bound} outside "
                f"[{config.min_bound}, {config.max_bound}]"
            )
        return super().pacing_violation(cores_view, global_time, capped)

    def average_bound(self, global_time: int) -> float:
        """Time-weighted average of the slack bound over the run."""
        integral = self._bound_integral + self.bound * (global_time - self._integral_from)
        return integral / global_time if global_time > 0 else float(self.bound)
