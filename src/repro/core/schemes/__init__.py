"""Slack-scheme policy objects.

A :class:`~repro.core.schemes.base.SchemePolicy` is the *live* counterpart
of a frozen ``SchemeConfig``: it holds whatever dynamic state the scheme
needs (the adaptive controller's current bound, the P2P peer constraints)
and therefore lives inside the snapshot-able simulation state.

Use :func:`make_policy` to instantiate the right policy for a config.
"""

from repro.config.schemes import (
    AdaptiveConfig,
    AdaptiveQuantumConfig,
    P2PConfig,
    QuantumConfig,
    SchemeConfig,
    SlackConfig,
    SpeculativeConfig,
)
from repro.core.schemes.base import SchemePolicy
from repro.core.schemes.fixed import FixedSlackPolicy, QuantumPolicy
from repro.core.schemes.adaptive import AdaptiveSlackPolicy
from repro.core.schemes.adaptive_quantum import AdaptiveQuantumPolicy
from repro.core.schemes.p2p import P2PPolicy
from repro.errors import ConfigError


def make_policy(config: SchemeConfig, num_cores: int, seed: int = 0) -> SchemePolicy:
    """Build the policy object for a scheme configuration.

    Speculative configs are *not* accepted here: speculation wraps a base
    scheme at the simulation level (``repro.core.speculative``); pass its
    ``base`` config instead.
    """
    if isinstance(config, SpeculativeConfig):
        raise ConfigError(
            "SpeculativeConfig wraps a base scheme; build the policy from "
            "config.base and enable speculation on the Simulation"
        )
    if isinstance(config, SlackConfig):
        return FixedSlackPolicy(config)
    if isinstance(config, QuantumConfig):
        return QuantumPolicy(config)
    if isinstance(config, AdaptiveConfig):
        return AdaptiveSlackPolicy(config)
    if isinstance(config, AdaptiveQuantumConfig):
        return AdaptiveQuantumPolicy(config)
    if isinstance(config, P2PConfig):
        return P2PPolicy(config, num_cores, seed)
    raise ConfigError(f"unknown scheme config type {type(config).__name__}")


__all__ = [
    "SchemePolicy",
    "FixedSlackPolicy",
    "QuantumPolicy",
    "AdaptiveSlackPolicy",
    "AdaptiveQuantumPolicy",
    "P2PPolicy",
    "make_policy",
]
