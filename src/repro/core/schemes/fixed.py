"""Fixed-window schemes: cycle-by-cycle, bounded slack, unbounded, quantum."""

from __future__ import annotations

from typing import Optional

from repro.config.schemes import QuantumConfig, SlackConfig
from repro.core.schemes.base import SchemePolicy


class FixedSlackPolicy(SchemePolicy):
    """Cycle-by-cycle (bound 0), bounded slack ``Sb``, or unbounded ``SU``.

    Cycle-by-cycle runs use a window of one cycle *with barrier semantics
    and conservative event service* — the gold standard.  Bounded slack
    with the same numeric window (``S1``) differs exactly as in the paper:
    synchronization is a cheap shared-variable check and the manager serves
    events in arrival order, trading violations for speed.
    """

    def __init__(self, config: SlackConfig) -> None:
        self.config = config
        if config.bound == 0:  # cycle-by-cycle: the gold standard
            self.barrier_sync = True
            self.conservative_service = True
        else:
            self.barrier_sync = False
            self.conservative_service = False
        # The bound is immutable; evaluate the window once instead of per
        # manager service step.
        self._window = None if config.bound is None else max(1, config.bound)

    @property
    def kind(self) -> str:
        return self.config.kind

    def window(self) -> Optional[int]:
        return self._window


class QuantumPolicy(SchemePolicy):
    """WWT-II-style quantum simulation: barrier every ``quantum`` cycles.

    Conservative service keeps quantum runs violation-free; accuracy
    nevertheless degrades for quanta above the critical latency (one clock
    for this target, since bus conflicts are modeled) because coherence
    events are *applied* late at the receiving cores.
    """

    barrier_sync = True
    conservative_service = True

    def __init__(self, config: QuantumConfig) -> None:
        self.config = config

    @property
    def kind(self) -> str:
        return self.config.kind

    def window(self) -> Optional[int]:
        return self.config.quantum
