"""Base interface shared by all slack-scheme policies."""

from __future__ import annotations

from typing import Optional

from repro.core.violations import ViolationDetector


class SchemePolicy:
    """Decides how far ahead of global time each core thread may simulate.

    Subclass contract:

    - :meth:`window` — the current slack window in cycles, or None for
      unbounded.  ``max_local_time = global_time + window``.
    - :attr:`barrier_sync` — True when threads sleep at window edges with a
      heavyweight barrier (cycle-by-cycle and quantum simulation); False
      when the window is enforced through cheap shared-variable checks
      (all slack schemes).
    - :attr:`conservative_service` — True when the manager must serve GQ
      events in timestamp order, holding back events stamped beyond the
      global time.  This is what makes cycle-by-cycle and quantum runs
      violation-free; slack schemes serve in arrival order.
    - :meth:`control_tick` — periodic hook for feedback control (adaptive
      slack).  Returns True when the hook actually adjusted anything, so
      the host cost model can charge for the adjustment.
    - :meth:`max_local_for` — per-core override hook (used by Lax-P2P,
      where constraints are pairwise rather than global).
    """

    barrier_sync: bool = False
    conservative_service: bool = False
    #: Optional :class:`~repro.telemetry.TelemetrySession`, attached by
    #: :class:`~repro.core.simulation.Simulation` when tracing is on.
    #: Observation-only: policies may report window adjustments through it
    #: but must never let it influence a control decision.
    telemetry = None
    #: True for schemes whose :meth:`on_global_advance` actually consumes
    #: the per-core clock snapshot; the manager skips building it otherwise.
    wants_core_clocks: bool = False
    #: True when :meth:`max_local_for` is the default global-window
    #: derivation (identical for every core); the manager then evaluates
    #: :meth:`window` once per service step instead of per core.  Schemes
    #: with per-core constraints (p2p) must clear it.
    uniform_window: bool = True

    @property
    def kind(self) -> str:
        """Short identifier for reports."""
        raise NotImplementedError

    def window(self) -> Optional[int]:
        """Current slack window in cycles; None means unbounded."""
        raise NotImplementedError

    def max_local_for(
        self, core_id: int, local_time: int, global_time: int
    ) -> Optional[int]:
        """Max local time for one core; None means unlimited.

        The default derives it from :meth:`window`; schemes with per-core
        constraints override this.
        """
        window = self.window()
        if window is None:
            return None
        return global_time + window

    def control_tick(
        self, detector: ViolationDetector, global_time: int, events_served: int = 0
    ) -> bool:
        """Periodic feedback-control hook; return True if an adjustment
        was made (charged by the host cost model).

        ``events_served`` is the manager's cumulative GQ event count —
        the traffic signal used by the adaptive-quantum baseline.
        """
        return False

    def on_global_advance(self, core_clocks) -> None:
        """Hook invoked when the manager recomputes local times.

        ``core_clocks`` is a list of ``(core_id, local_time, active)``
        where ``active`` is False for finished or sync-blocked (frozen)
        cores.  Used by per-core schemes such as Lax-P2P.
        """

    def pacing_violation(
        self, cores_view, global_time: int, capped: bool = False
    ) -> Optional[str]:
        """Sanitizer hook: does the current pacing assignment break this
        scheme's own contract?

        ``cores_view`` is a list of ``(core_id, local_time, max_local_time,
        finished, waiting_sync)`` rows taken right after a manager service
        step.  ``capped`` is True when the speculative controller overrode
        the scheme's window (``force_window``/``window_cap``), which only
        ever *lowers* limits — window-excess checks still apply, but a
        missing limit under an unbounded scheme becomes legal.

        Returns a human-readable description of the first breach, or None
        when the assignment conforms.  Observation-only: implementations
        must not mutate scheme state.  Subclasses layer scheme-specific
        constraints (adaptive bound range, p2p pairwise leads) on top of
        the base window check via ``super()``.
        """
        window = self.window()
        for core_id, _local, max_local, finished, _waiting in cores_view:
            if finished:
                continue
            if max_local is None:
                if window is not None and not capped:
                    return (
                        f"core {core_id} has no pacing limit under a "
                        f"{window}-cycle window"
                    )
                continue
            if window is not None and not capped and max_local - global_time > window:
                return (
                    f"core {core_id} pacing limit {max_local} exceeds "
                    f"global time {global_time} + window {window}"
                )
        return None
