"""SlackSim engine: the paper's primary contribution.

This package implements the slack-simulation paradigm (paper section 2),
violation detection (section 3), adaptive slack (section 4), and
speculative slack with checkpoint/rollback plus the analytical performance
model (section 5), all on top of a deterministic model of the parallel
host (see DESIGN.md for the substitution rationale).

Public entry point: :class:`repro.core.simulation.Simulation`.
"""

from repro.core.analytical import SpeculativeModelInputs, speculative_time
from repro.core.report import SimulationReport
from repro.core.simulation import Simulation

__all__ = [
    "Simulation",
    "SimulationReport",
    "speculative_time",
    "SpeculativeModelInputs",
]
