"""Copy-on-write snapshot layer for :class:`~repro.core.state.SimulationState`.

The historic checkpoint was a full ``copy.deepcopy`` of the state root —
tens of thousands of cache-line objects per snapshot, regardless of how
few of them changed.  This module makes snapshots O(writes):

- **Cache arrays** (the bulk of the state) track writes at page
  granularity themselves (``CacheArray._dirty``; a page is
  ``memory.cache.PAGE_SLOTS`` consecutive slots of the flat SoA banks).
  ``take`` folds only the dirty pages into each array's shadow banks;
  ``restore`` copies those pages back and patches the tag index.
- **The cache status map** keeps a first-touch undo journal
  (``CacheStatusMap._journal``): ``take`` resets it, ``restore`` replays
  it in reverse.
- **Everything else** (queues, interpreters, clock banks, MSHRs, scheme
  dynamics, detector counters — all small and write-heavy) is the
  *residue*: it is still deep-copied, but with the arrays and the map
  pre-seeded into the deepcopy memo as frozen scalar stubs, so the copy
  never descends into the banks.  ``restore`` deep-copies the residue
  back with the stubs mapped onto the live (bank-restored) objects,
  producing a fresh root that shares the rewound arrays.

Snapshots are generation-tagged: each ``take`` advances a serial and
stamps it on every array's shadow.  Only the most recent snapshot of a
state is restorable (taking a new one overwrites the shadows); restoring
a superseded snapshot raises :class:`~repro.errors.CheckpointError`
instead of silently resurrecting torn state.

The protocol only sees writes that go through the tracked APIs: bank
writes must use the ``CacheArray`` mutators (or mark ``_dirty``
themselves), and map writes must go through the ``apply_*``
transactions.  Anything else that hangs off the root is residue and may
be mutated freely between checkpoints.
"""

from __future__ import annotations

import copy
from itertools import count
from typing import List, Optional, Tuple

from repro.core.state import SimulationState
from repro.errors import CheckpointError
from repro.memory.cache import CacheArray
from repro.memory.cache_map import CacheStatusMap

#: Snapshot generation serial (host-side bookkeeping only; never feeds
#: modeled time or the report digest).
_GENERATION = count(1)


class _ArrayStub:
    """Frozen scalars of one CacheArray at snapshot time.

    Doubles as the deepcopy placeholder for the array inside the residue:
    ``take`` seeds ``memo[id(array)] = stub`` so the residue copy holds
    stubs, and ``restore`` seeds ``memo[id(stub)] = array`` so the copied
    residue points back at the live, bank-restored array.
    """

    __slots__ = ("clock", "hits", "misses", "evictions")

    def __init__(self, array: CacheArray) -> None:
        self.clock = array._clock
        self.hits = array.hits
        self.misses = array.misses
        self.evictions = array.evictions

    def apply(self, array: CacheArray) -> None:
        array._clock = self.clock
        array.hits = self.hits
        array.misses = self.misses
        array.evictions = self.evictions


class _MapStub:
    """Frozen statistics of the cache status map (entries go via journal)."""

    __slots__ = ("gets_served", "getx_served", "upgr_served", "writebacks",
                 "cache_to_cache")

    def __init__(self, cmap: CacheStatusMap) -> None:
        self.gets_served = cmap.gets_served
        self.getx_served = cmap.getx_served
        self.upgr_served = cmap.upgr_served
        self.writebacks = cmap.writebacks
        self.cache_to_cache = cmap.cache_to_cache

    def apply(self, cmap: CacheStatusMap) -> None:
        cmap.gets_served = self.gets_served
        cmap.getx_served = self.getx_served
        cmap.upgr_served = self.upgr_served
        cmap.writebacks = self.writebacks
        cmap.cache_to_cache = self.cache_to_cache


class StateSnapshot:
    """One copy-on-write checkpoint of a simulation state root."""

    __slots__ = (
        "generation",
        "residue",
        "_arrays",
        "_cmap",
        "_cmap_stub",
        "host_pages",
    )

    def __init__(
        self,
        generation: int,
        residue: SimulationState,
        arrays: List[Tuple[CacheArray, _ArrayStub]],
        cmap: CacheStatusMap,
        cmap_stub: _MapStub,
        host_pages: int,
    ) -> None:
        self.generation = generation
        self.residue = residue
        self._arrays = arrays
        self._cmap = cmap
        self._cmap_stub = cmap_stub
        #: Pages actually copied into the shadows by this take (host-side
        #: measurement; the modeled cost uses target pages_touched).
        self.host_pages = host_pages


def tracked_arrays(state: SimulationState) -> List[CacheArray]:
    """Every CacheArray hanging off ``state``, in deterministic order."""
    arrays: List[CacheArray] = []
    for cs in state.cores:
        arrays.append(cs.model.l1.array)
        icache = cs.model._icache
        if icache is not None:
            arrays.append(icache)
    arrays.append(state.manager.l2.array)
    return arrays


def take(state: SimulationState) -> StateSnapshot:
    """Capture a copy-on-write snapshot of ``state``.

    Cost is proportional to the pages written since the previous snapshot
    of this state (plus the residue, whose size is independent of the
    cache geometry).
    """
    generation = next(_GENERATION)
    memo: dict = {}
    arrays: List[Tuple[CacheArray, _ArrayStub]] = []
    host_pages = 0
    for array in tracked_arrays(state):
        stub = _ArrayStub(array)
        host_pages += array.snapshot_sync()
        array._snap_epoch = generation
        memo[id(array)] = stub  # repro: noqa[RPR003] deepcopy memo protocol keys by object identity
        arrays.append((array, stub))
    cmap = state.manager.cache_map
    cmap_stub = _MapStub(cmap)
    cmap.journal_reset()
    memo[id(cmap)] = cmap_stub  # repro: noqa[RPR003] deepcopy memo protocol keys by object identity
    residue = copy.deepcopy(state, memo)
    return StateSnapshot(generation, residue, arrays, cmap, cmap_stub, host_pages)


def restore(snapshot: StateSnapshot) -> SimulationState:
    """Rewind to ``snapshot``; return a fresh working state root.

    The snapshot stays pristine: the arrays' shadows and the residue are
    never mutated here, so the same snapshot can be restored repeatedly
    (each restore returns a fresh root sharing the rewound arrays).
    Raises :class:`CheckpointError` if a newer snapshot has been taken
    since (its shadows have overwritten this one's).
    """
    memo: dict = {}
    for array, stub in snapshot._arrays:
        if array._snap_epoch != snapshot.generation:
            raise CheckpointError(
                "snapshot superseded: a newer checkpoint of this state "
                "has overwritten the copy-on-write shadows"
            )
        array.snapshot_restore()
        stub.apply(array)
        memo[id(stub)] = array  # repro: noqa[RPR003] deepcopy memo protocol keys by object identity
    cmap = snapshot._cmap
    cmap.journal_revert()
    snapshot._cmap_stub.apply(cmap)
    memo[id(snapshot._cmap_stub)] = cmap  # repro: noqa[RPR003] deepcopy memo protocol keys by object identity
    return copy.deepcopy(snapshot.residue, memo)
