"""Checkpointing and speculative-rollback control (paper section 5).

The controller implements two modes on the same machinery:

- **checkpoint-only** (``speculate=False``): periodic global checkpoints
  are taken and charged, and per-interval violation statistics are
  recorded.  This is exactly how the paper produced Table 2's 5K-100K
  columns and the F / D_r measurements of Tables 3 and 4.
- **full speculation** (``speculate=True``): additionally, whenever a
  *tracked* violation is detected, the simulation rolls back to the last
  checkpoint and replays in cycle-by-cycle mode until the next boundary
  (the forward-progress guarantee), then resumes the base scheme.  The
  paper modeled this analytically (section 5.2); here it is implemented in
  full, as extension E1.

The four critical mechanisms (section 5): 1) checkpointing, 2) violation
detection, 3) rollback, 4) forward progress.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import CheckpointConfig, HostCostModel
from repro.core.checkpoint import (
    Snapshot,
    checkpoint_cost_ns,
    restore_snapshot,
    take_snapshot,
)
from repro.core.manager import ServiceOutcome


class IntervalRecord:
    """Violation statistics for one checkpoint interval."""

    __slots__ = ("index", "start", "end", "violations", "first_offset", "rolled_back")

    def __init__(self, index: int, start: int, end: int) -> None:
        self.index = index
        self.start = start
        self.end = end
        self.violations = 0
        self.first_offset: Optional[int] = None  # target cycles into interval
        self.rolled_back = False

    @property
    def violated(self) -> bool:
        return self.violations > 0


class CheckpointController:
    """Coordinates periodic checkpoints and (optionally) rollback."""

    def __init__(
        self,
        sim,
        config: CheckpointConfig,
        cost: HostCostModel,
        speculate: bool = False,
        tracked: Tuple[str, ...] = ("bus", "map"),
    ) -> None:
        self.sim = sim
        self.config = config
        self.cost = cost
        self.speculate = speculate
        self.tracked = frozenset(tracked)
        self.snapshot: Optional[Snapshot] = None
        self.next_boundary = config.interval
        self.replaying = False
        self.records: List[IntervalRecord] = []
        self._current = IntervalRecord(0, 0, config.interval)

    # ------------------------------------------------------------------ #
    # Scheduler integration
    # ------------------------------------------------------------------ #

    def on_run_start(self, scheduler) -> None:
        """Take the initial (time-zero) checkpoint before simulation."""
        # The capture happens before the pause: snapshot content is pure
        # simulation state, so the host time the contexts resume at does
        # not affect it (only the snapshot's host_time stamp, set below).
        snapshot = take_snapshot(self.sim.state, 0, 0.0)
        pages = snapshot.pages  # nothing written yet; cost is the bare fork
        cost = checkpoint_cost_ns(self.cost, pages)
        resume = scheduler.pause_all_contexts(cost)
        snapshot.host_time = resume
        self.snapshot = snapshot
        scheduler.stats.checkpoints += 1
        scheduler.stats.checkpoint_cost_ns += cost
        tel = self.sim.telemetry
        if tel is not None and tel.enabled:
            tel.on_checkpoint(resume - cost, cost, 0, pages, snapshot.host_pages)
        san = getattr(self.sim, "sanitizer", None)
        if san is not None and san.enabled:
            san.on_checkpoint(snapshot, self.sim.state)
        scheduler.wake_all(resume)

    def overrides(self) -> Dict[str, object]:
        """Manager-service overrides for the current mode."""
        overrides: Dict[str, object] = {"window_cap": self.next_boundary}
        if self.replaying:
            overrides["force_window"] = 1
            overrides["conservative"] = True
            overrides["control_enabled"] = False
        return overrides

    def after_manager_step(
        self, scheduler, outcome: ServiceOutcome, host_end: float
    ) -> None:
        """React to violations and boundary arrivals."""
        for violation in outcome.violations:
            self._note_violation(violation)

        if self.speculate and not self.replaying:
            if any(v.vtype in self.tracked for v in outcome.violations):
                self._rollback(scheduler, outcome, host_end)
                return

        state = self.sim.state
        if state.all_finished:
            return
        if self._parked(state) and state.manager.quiescent(state):
            self._take_checkpoint(scheduler)

    def finalize(self) -> List[IntervalRecord]:
        """Close the trailing partial interval and return all records."""
        state = self.sim.state
        if state.execution_time() > self._current.start:
            self._current.end = min(self._current.end, state.execution_time())
            self.records.append(self._current)
            self._current = IntervalRecord(
                self._current.index + 1, self._current.end, self._current.end
            )
        return self.records

    # ------------------------------------------------------------------ #

    def _parked(self, state) -> bool:
        """True when no core can move before the boundary.

        A core blocked on workload synchronization with an empty InQ (and a
        quiescent manager, checked by the caller) is legitimately frozen
        below the boundary: in the target execution that barrier/lock wait
        simply spans the checkpoint time.
        """
        for cs in state.cores:
            if cs.finished or cs.local_time >= self.next_boundary:
                continue
            if cs.model.waiting_sync and not cs.inq:
                continue
            return False
        return True

    def _note_violation(self, violation) -> None:
        record = self._current
        record.violations += 1
        offset = violation.ts - record.start
        if offset < 0:
            offset = 0
        elif offset > self.config.interval:
            offset = self.config.interval
        if record.first_offset is None:
            record.first_offset = offset

    def _take_checkpoint(self, scheduler) -> None:
        # Capture first: the snapshot measures the touched-page count and
        # the cost is charged from that measurement (no separate caller
        # estimate).  Snapshot content is host-time independent, so taking
        # it before the pause is equivalent.
        snapshot = take_snapshot(self.sim.state, self.next_boundary, 0.0)
        pages = snapshot.pages
        cost = checkpoint_cost_ns(self.cost, pages)
        resume = scheduler.pause_all_contexts(cost)
        snapshot.host_time = resume
        tel = self.sim.telemetry
        if self.replaying:
            scheduler.stats.replay_target_cycles += self.config.interval
            self.replaying = False
            if tel is not None and tel.enabled:
                # Close the replay span before the checkpoint span opens so
                # the controller track stays in timestamp order.
                tel.on_replay_end(resume - cost)
        self.snapshot = snapshot
        scheduler.stats.checkpoints += 1
        scheduler.stats.checkpoint_cost_ns += cost
        if tel is not None and tel.enabled:
            tel.on_checkpoint(
                resume - cost, cost, self.next_boundary, pages, snapshot.host_pages
            )
        san = getattr(self.sim, "sanitizer", None)
        if san is not None and san.enabled:
            san.on_checkpoint(snapshot, self.sim.state)

        self.records.append(self._current)
        start = self.next_boundary
        self.next_boundary += self.config.interval
        self._current = IntervalRecord(self._current.index + 1, start, self.next_boundary)
        scheduler.wake_all(resume)

    def _rollback(self, scheduler, outcome: ServiceOutcome, host_end: float) -> None:
        """Restore the last checkpoint; replay conservatively to the next
        boundary (forward progress)."""
        self._current.rolled_back = True
        interval_start = self.next_boundary - self.config.interval
        wasted = outcome.global_time - interval_start
        if wasted < 0:
            wasted = 0
        scheduler.stats.rollbacks += 1
        scheduler.stats.wasted_target_cycles += wasted
        scheduler.stats.rollback_cost_ns += self.cost.rollback_ns

        self.sim.state = restore_snapshot(self.snapshot)
        san = getattr(self.sim, "sanitizer", None)
        if san is not None and san.enabled:
            # Digest-check the restored root *before* the post-rollback
            # throttle mutates the scheme bound, and rewind the vector
            # clocks so monotonicity checks restart from the checkpoint.
            san.on_rollback(self.sim.state, self.snapshot)
        self._throttle_after_rollback()
        resume = scheduler.pause_all_contexts(self.cost.rollback_ns)
        self.replaying = True
        tel = self.sim.telemetry
        if tel is not None and tel.enabled:
            tel.on_rollback(
                resume - self.cost.rollback_ns, self.cost.rollback_ns,
                outcome.global_time, wasted,
            )
        scheduler.wake_all(resume)

    def _throttle_after_rollback(self) -> None:
        """Clamp an adaptive base scheme to its minimum bound.

        Rolling back restores the checkpointed controller state, erasing
        the violations that *caused* the rollback; without this clamp the
        controller would charge straight back into the same aggressive
        bound, and the erased history would make speculation look
        spuriously cheap.  Throttling on rollback is the section-4 "slack
        throttling" response applied to the strongest possible violation
        signal.
        """
        from repro.core.schemes.adaptive import AdaptiveSlackPolicy

        scheme = self.sim.state.scheme
        if isinstance(scheme, AdaptiveSlackPolicy):
            scheme.bound = scheme.config.min_bound
