"""Modeled host contexts and thread bookkeeping.

The host CMP is modeled as ``HostConfig.num_contexts`` hardware thread
contexts, each with its own modeled clock.  Simulation threads are assigned
to contexts round-robin (the paper runs nine threads on eight Xeon
contexts, so the manager shares a context with core 0); threads sharing a
context serialize and pay a context-switch penalty on interleaving.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, Optional

from repro.util import XorShift64


class ThreadState(IntEnum):
    """Scheduling state of one simulation thread."""

    READY = 0
    BLOCKED = 1  # waiting for a manager wake (slack limit)
    DONE = 2  # workload thread finished (may revert on rollback)


class HostThread:
    """Host-side wrapper pairing a runner with its scheduling state."""

    __slots__ = (
        "runner",
        "state",
        "ready_time",
        "context",
        "rng",
        "steps",
        "pos",
        "queued",
    )

    def __init__(self, runner, context: "HostContext", rng: XorShift64) -> None:
        self.runner = runner
        self.state = ThreadState.READY
        self.ready_time = 0.0  # earliest modeled host time it may run
        self.context = context
        self.rng = rng  # deterministic host-noise stream
        self.steps = 0
        # Scheduler bookkeeping: deterministic tie-break rank (position in
        # the scheduler's thread list) and ready-heap membership flag.
        self.pos = 0
        self.queued = False

    @property
    def name(self) -> str:
        return self.runner.name

    def jitter(self, jitter_frac: float) -> float:
        """Multiplicative host-noise factor for one step's cost."""
        if jitter_frac <= 0.0:
            return 1.0
        return 1.0 + jitter_frac * (2.0 * self.rng.next_float() - 1.0)


class ThreadSet:
    """Insertion-ordered set of threads with O(1) append/remove.

    Manager migration moves the manager thread between contexts on every
    scheduling decision; a plain list would pay an O(n) ``remove`` scan
    each time.  Backed by a dict (insertion-ordered, O(1) membership
    update) while keeping the small list-like API the scheduler and tests
    use.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: Dict[HostThread, None] = {}

    def append(self, thread: "HostThread") -> None:
        self._items[thread] = None

    def remove(self, thread: "HostThread") -> None:
        del self._items[thread]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __contains__(self, thread) -> bool:
        return thread in self._items


class HostContext:
    """One modeled hardware thread context."""

    __slots__ = ("index", "clock", "threads", "last_thread")

    def __init__(self, index: int) -> None:
        self.index = index
        self.clock = 0.0
        self.threads = ThreadSet()
        self.last_thread: Optional[HostThread] = None

    @property
    def shared(self) -> bool:
        """True when more than one simulation thread runs here."""
        return len(self.threads) > 1
