"""Top-level simulation façade: the library's main entry point.

Typical use::

    from repro import Simulation, SlackConfig
    from repro.workloads import make_workload

    workload = make_workload("fft", num_threads=8)
    report = Simulation(workload, scheme=SlackConfig(bound=4)).run()
    print(report.summary())

A :class:`Simulation` wires the target CMP (cores + L1s, bus, L2), the
workload's per-thread programs, the slack-scheme policy, violation
detection, and — when requested — the checkpoint/speculation controller,
then runs everything on the modeled host and produces a
:class:`~repro.core.report.SimulationReport`.
"""

from __future__ import annotations

import gc
from typing import Optional

from repro.config import (
    CheckpointConfig,
    HostConfig,
    SchemeConfig,
    SlackConfig,
    SpeculativeConfig,
    TargetConfig,
    paper_host_config,
    paper_target_config,
)
from repro.core.manager import ManagerState
from repro.core.report import IntervalSummary, SimulationReport
from repro.core.scheduler import Scheduler
from repro.core.schemes import make_policy
from repro.core.schemes.adaptive import AdaptiveSlackPolicy
from repro.core.speculative import CheckpointController
from repro.core.state import CoreState, SimulationState
from repro.core.violations import ViolationDetector
from repro.cpu.core import CoreModel
from repro.errors import ConfigError
from repro.isa.program import ProgramInterpreter
from repro.sync.primitives import SyncTimingConfig
from repro.telemetry import TelemetrySession
from repro.util import SplitMix64

#: Default runaway-simulation guard, in target cycles.
DEFAULT_MAX_TARGET_CYCLES = 20_000_000


class Simulation:
    """One configured simulation run."""

    def __init__(
        self,
        workload,
        scheme: Optional[SchemeConfig] = None,
        target: Optional[TargetConfig] = None,
        host: Optional[HostConfig] = None,
        detection: bool = True,
        checkpoint: Optional[CheckpointConfig] = None,
        sync_timing: Optional[SyncTimingConfig] = None,
        seed: int = 12345,
        telemetry: Optional[TelemetrySession] = None,
        sanitizer=None,
    ) -> None:
        self.workload = workload
        self.target = target or paper_target_config()
        self.host = host or paper_host_config()
        self.seed = seed
        # Telemetry is observation-only: probes never touch simulation
        # state, RNG draws, or modeled host costs, so the report digest is
        # identical whether a session is attached, disabled, or absent.
        self.telemetry = telemetry
        # The slack sanitizer (repro.analysis.sanitizer.SlackSanitizer)
        # shares the same contract: observation-only, shared across
        # checkpoint snapshots, digest-invariant — it raises on breach but
        # never alters a healthy run.
        self.sanitizer = sanitizer
        self.scheme_config = scheme if scheme is not None else SlackConfig(bound=0)

        speculate = False
        tracked: tuple = ()
        base_config = self.scheme_config
        if isinstance(self.scheme_config, SpeculativeConfig):
            speculate = True
            tracked = self.scheme_config.tracked
            base_config = self.scheme_config.base
            if checkpoint is not None:
                raise ConfigError(
                    "SpeculativeConfig carries its own checkpoint config; "
                    "do not also pass checkpoint="
                )
            checkpoint = self.scheme_config.checkpoint
        if speculate and not detection:
            raise ConfigError("speculative slack requires violation detection")

        if workload.num_threads > self.target.num_cores:
            raise ConfigError(
                f"workload has {workload.num_threads} threads but the target "
                f"has only {self.target.num_cores} cores"
            )

        seeds = SplitMix64(seed)
        policy = make_policy(base_config, self.target.num_cores, seeds.next_u64())
        detector = ViolationDetector(enabled=detection)

        programs = list(workload.programs(seeds.next_u64()))
        # Idle cores run an empty program (immediate THREAD_END).
        while len(programs) < self.target.num_cores:
            programs.append(ProgramInterpreter((), len(programs), seeds.next_u64()))

        cores = [
            CoreState(i, CoreModel(i, self.target, program))
            for i, program in enumerate(programs)
        ]
        manager = ManagerState(self.target, detector, sync_timing)
        self.state = SimulationState(self.target, cores, manager, policy)

        if telemetry is not None:
            # Probe wiring: the session is shared (its __deepcopy__ returns
            # self), so checkpoints snapshot around it, never through it.
            telemetry.attach(self.target.num_cores)
            manager.telemetry = telemetry
            policy.telemetry = telemetry
            for cs in cores:
                cs.model.telemetry = telemetry

        if sanitizer is not None:
            sanitizer.attach(self.target.num_cores)
            manager.sanitizer = sanitizer

        self.controller: Optional[CheckpointController] = None
        if checkpoint is not None:
            self.controller = CheckpointController(
                self, checkpoint, self.host.cost, speculate=speculate, tracked=tracked
            )
        self._ran = False

    # ------------------------------------------------------------------ #

    def run(self, max_target_cycles: Optional[int] = DEFAULT_MAX_TARGET_CYCLES) -> SimulationReport:
        """Run to workload completion; return the report.

        A Simulation is single-shot: its state is consumed by the run.
        Build a fresh Simulation (same arguments, same seed) to repeat a
        run bit-for-bit.
        """
        if self._ran:
            raise ConfigError(
                "this Simulation has already run; construct a new one "
                "(same arguments and seed reproduce the run exactly)"
            )
        self._ran = True
        scheduler = Scheduler(self, self.host)
        if self.controller is not None:
            self.controller.on_run_start(scheduler)
        # The run allocates heavily but creates almost no cyclic garbage;
        # collector pauses are pure overhead here.  Refcounting still frees
        # everything promptly; cycles (if any) are collected afterwards.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            stats = scheduler.run(max_target_cycles)
        finally:
            if gc_was_enabled:
                gc.enable()
        return self._build_report(scheduler, stats)

    # ------------------------------------------------------------------ #

    def _build_report(self, scheduler: Scheduler, stats) -> SimulationReport:
        state = self.state
        manager = state.manager
        detector = manager.detector
        execution_time = state.execution_time()
        instructions = state.total_instructions()

        per_core_cpi = []
        total_core_cycles = 0
        for cs in state.cores:
            total_core_cycles += cs.local_time
            if cs.model.instructions:
                per_core_cpi.append(cs.local_time / cs.model.instructions)
            else:
                per_core_cpi.append(0.0)

        l1_accesses = sum(cs.model.l1.loads + cs.model.l1.stores for cs in state.cores)
        l1_misses = sum(
            cs.model.l1.load_misses + cs.model.l1.store_misses + cs.model.l1.upgrades
            for cs in state.cores
        )

        report = SimulationReport(
            benchmark=self.workload.name,
            scheme=self.scheme_config.kind,
            num_cores=self.target.num_cores,
            seed=self.seed,
            target_cycles=execution_time,
            instructions=instructions,
            cpi=(total_core_cycles / instructions) if instructions else 0.0,
            per_core_cpi=per_core_cpi,
            l1_miss_rate=(l1_misses / l1_accesses) if l1_accesses else 0.0,
            l2_miss_rate=manager.l2.miss_rate(),
            bus_requests=manager.bus.requests,
            bus_conflict_cycles=manager.bus.request_conflict_cycles
            + manager.bus.response_conflict_cycles,
            violation_counts=dict(detector.counts),
            violation_rate=detector.rate(execution_time),
            bus_violation_rate=detector.rate_of("bus", execution_time),
            map_violation_rate=detector.rate_of("map", execution_time),
            detection_enabled=detector.enabled,
            sim_time_s=scheduler.simulation_time_ns() / 1e9,
            manager_steps=stats.manager_steps,
            core_steps=stats.core_steps,
            manager_busy_s=stats.manager_busy_ns / 1e9,
            submanager_busy_s=stats.submanager_busy_ns / 1e9,
            checkpoints=stats.checkpoints,
            checkpoint_cost_s=stats.checkpoint_cost_ns / 1e9,
            rollbacks=stats.rollbacks,
            rollback_cost_s=stats.rollback_cost_ns / 1e9,
            wasted_target_cycles=stats.wasted_target_cycles,
            replay_target_cycles=stats.replay_target_cycles,
        )

        report.stall_cycles = sum(cs.model.stall_cycles for cs in state.cores)
        report.sync_stall_cycles = sum(cs.model.sync_stall_cycles for cs in state.cores)
        report.ifetch_stall_cycles = sum(
            cs.model.ifetch_stall_cycles for cs in state.cores
        )

        policy = state.scheme
        if isinstance(policy, AdaptiveSlackPolicy):
            report.final_bound = policy.bound
            report.average_bound = policy.average_bound(execution_time)
            report.bound_adjustments = policy.adjustments
            report.bound_history = list(policy.history)

        if self.controller is not None:
            report.intervals = [
                IntervalSummary(
                    index=r.index,
                    start=r.start,
                    end=r.end,
                    violations=r.violations,
                    first_offset=r.first_offset,
                    rolled_back=r.rolled_back,
                )
                for r in self.controller.finalize()
            ]
        return report
