"""Simulation-violation detection (paper section 3).

A violation occurs when a resource is accessed in a different order in the
simulation (host arrival order) than in the target (timestamp order).  The
detection mechanism is the paper's: a *monitoring variable* per resource
records the largest timestamp of any operation applied so far; an incoming
operation with a *smaller* timestamp is a violation (equal timestamps are
legitimate same-cycle concurrency and never count).

Two monitored resources:

- the snooping bus — one monitor for the shared arbitration state
  ("bus violations", Figure 3a), and
- the global cache status map — one monitor per line
  ("map violations", Figure 3b); per-line state is touched far less often
  than the bus, which is why map violations need much larger slack to
  appear and stay at least an order of magnitude rarer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Canonical violation-type names (must match config.schemes.VIOLATION_TYPES).
BUS = "bus"
MAP = "map"

#: Shared empty drain result (most service steps see no violations).
_NO_VIOLATIONS: List["ViolationRecord"] = []


# repro: hot-path
class TimestampMonitor:
    """One monitoring variable guarding one resource."""

    __slots__ = ("last_ts",)

    def __init__(self) -> None:
        self.last_ts = -1

    def check_and_update(self, ts: int) -> bool:
        """Apply an operation stamped ``ts``; return True on violation."""
        if ts < self.last_ts:
            return True
        self.last_ts = ts
        return False

    def reset(self) -> None:
        self.last_ts = -1


class MapMonitorTable:
    """Per-line monitoring variables for the cache status map."""

    __slots__ = ("_monitors",)

    def __init__(self) -> None:
        self._monitors: Dict[int, int] = {}

    def check_and_update(self, line_addr: int, ts: int) -> bool:
        """Apply a map operation on ``line_addr``; return True on violation."""
        last = self._monitors.get(line_addr, -1)
        if ts < last:
            return True
        self._monitors[line_addr] = ts
        return False

    def __len__(self) -> int:
        return len(self._monitors)

    def __deepcopy__(self, memo) -> "MapMonitorTable":
        # The table is a flat int->int dict that grows with the workload's
        # line footprint; a C-level dict copy is exact and spares the
        # checkpoint residue a per-entry deepcopy walk.
        new = MapMonitorTable()
        new._monitors = dict(self._monitors)
        memo[id(self)] = new
        return new


# repro: hot-path
class ViolationRecord:
    """One detected violation (kept lightweight; produced in bulk)."""

    __slots__ = ("vtype", "ts", "global_time", "core_id")

    def __init__(self, vtype: str, ts: int, global_time: int, core_id: int) -> None:
        self.vtype = vtype
        self.ts = ts  # the violating operation's target timestamp
        self.global_time = global_time  # global time at detection
        self.core_id = core_id


class ViolationDetector:
    """Detects, counts, and reports violations at the manager.

    ``enabled=False`` turns detection off entirely (the paper notes that
    detection itself disturbs the simulation; the host cost model charges
    for it only when enabled — ablation A1).

    Counts are split into cumulative totals and a resettable window used by
    the adaptive controller.  Records of new violations accumulate in a
    pending list the manager drains each service step, so host-side
    consumers (the speculative controller, interval trackers) observe them
    without the detector holding references to host objects — a requirement
    for checkpointing the detector by deep copy.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counts: Dict[str, int] = {BUS: 0, MAP: 0}
        self.window_counts: Dict[str, int] = {BUS: 0, MAP: 0}
        self._bus_monitor = TimestampMonitor()
        self._map_monitors = MapMonitorTable()
        self._pending: List[ViolationRecord] = []
        self.last_violation: Optional[ViolationRecord] = None

    # ------------------------------------------------------------------ #

    def check_bus(self, ts: int, global_time: int, core_id: int) -> bool:
        """Monitor one bus grant; count and report a violation if any."""
        if not self.enabled:
            return False
        if self._bus_monitor.check_and_update(ts):
            self._record(BUS, ts, global_time, core_id)
            return True
        return False

    def check_map(self, line_addr: int, ts: int, global_time: int, core_id: int) -> bool:
        """Monitor one cache-map operation; count a violation if any."""
        if not self.enabled:
            return False
        if self._map_monitors.check_and_update(line_addr, ts):
            self._record(MAP, ts, global_time, core_id)
            return True
        return False

    def _record(self, vtype: str, ts: int, global_time: int, core_id: int) -> None:
        self.counts[vtype] += 1
        self.window_counts[vtype] += 1
        record = ViolationRecord(vtype, ts, global_time, core_id)
        self.last_violation = record
        self._pending.append(record)

    def drain_pending(self) -> List[ViolationRecord]:
        """Return and clear violations recorded since the last drain."""
        pending = self._pending
        if not pending:
            return _NO_VIOLATIONS  # shared: callers never mutate the list
        self._pending = []
        return pending

    # ------------------------------------------------------------------ #

    @property
    def total(self) -> int:
        """Cumulative violation count across all types."""
        return sum(self.counts.values())

    def window_total(self) -> int:
        """Violations since the last :meth:`reset_window`."""
        return sum(self.window_counts.values())

    def reset_window(self) -> None:
        """Start a new adaptive-control window."""
        for key in self.window_counts:
            self.window_counts[key] = 0

    def rate(self, cycles: int) -> float:
        """Cumulative violation rate: violations per simulated cycle."""
        return self.total / cycles if cycles > 0 else 0.0

    def rate_of(self, vtype: str, cycles: int) -> float:
        """Cumulative rate of one violation type."""
        return self.counts[vtype] / cycles if cycles > 0 else 0.0
