"""Per-run simulation report.

Collects every metric the paper's evaluation uses: target execution time
and CPI (the accuracy metrics), modeled simulation time (the speed metric),
violation counts and rates by type, plus scheme-specific data (adaptive
bound trajectory summary, checkpoint/rollback accounting, per-interval
violation records for Tables 3 and 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class IntervalSummary:
    """One checkpoint interval's violation statistics (Tables 3/4)."""

    index: int
    start: int
    end: int
    violations: int
    first_offset: Optional[int]
    rolled_back: bool


@dataclass
class SimulationReport:
    """Everything measured by one simulation run."""

    # Identity
    benchmark: str
    scheme: str
    num_cores: int
    seed: int

    # Target-side (accuracy) metrics
    target_cycles: int = 0
    instructions: int = 0
    cpi: float = 0.0
    per_core_cpi: List[float] = field(default_factory=list)
    l1_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    bus_requests: int = 0
    bus_conflict_cycles: int = 0

    # Violations (section 3)
    violation_counts: Dict[str, int] = field(default_factory=dict)
    violation_rate: float = 0.0  # total violations / simulated cycles
    bus_violation_rate: float = 0.0
    map_violation_rate: float = 0.0
    detection_enabled: bool = True

    # Host-side (speed) metrics
    sim_time_s: float = 0.0  # modeled host seconds (the paper's "simulation time")
    manager_steps: int = 0
    core_steps: int = 0
    manager_busy_s: float = 0.0  # top-manager host time (hierarchy studies)
    submanager_busy_s: float = 0.0

    # Pipeline-stall breakdown (aggregate over cores)
    stall_cycles: int = 0
    sync_stall_cycles: int = 0
    ifetch_stall_cycles: int = 0

    # Adaptive scheme (section 4)
    final_bound: Optional[int] = None
    average_bound: Optional[float] = None
    bound_adjustments: Optional[int] = None
    bound_history: List[tuple] = field(default_factory=list)

    # Checkpointing / speculation (section 5)
    checkpoints: int = 0
    checkpoint_cost_s: float = 0.0
    rollbacks: int = 0
    rollback_cost_s: float = 0.0
    wasted_target_cycles: int = 0
    replay_target_cycles: int = 0
    intervals: List[IntervalSummary] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #

    def fraction_intervals_violating(self) -> float:
        """F: fraction of *complete* checkpoint intervals with >= 1
        violation (Table 3)."""
        complete = [r for r in self.intervals if r.end - r.start > 0]
        if not complete:
            return 0.0
        return sum(1 for r in complete if r.violations > 0) / len(complete)

    def mean_first_violation_distance(self) -> Optional[float]:
        """D_r: mean distance from interval start to the first violation,
        over violating intervals (Table 4)."""
        offsets = [r.first_offset for r in self.intervals if r.first_offset is not None]
        if not offsets:
            return None
        return sum(offsets) / len(offsets)

    def speedup_over(self, reference: "SimulationReport") -> float:
        """Simulation-time speedup relative to another run (e.g. CC)."""
        if self.sim_time_s == 0:
            raise ZeroDivisionError("report has zero simulation time")
        return reference.sim_time_s / self.sim_time_s

    def execution_time_error(self, reference: "SimulationReport") -> float:
        """Relative error of the target execution time vs a reference run
        (the paper's accuracy definition, with CC as gold standard)."""
        if reference.target_cycles == 0:
            raise ZeroDivisionError("reference ran zero cycles")
        return abs(self.target_cycles - reference.target_cycles) / reference.target_cycles

    def cpi_error(self, reference: "SimulationReport") -> float:
        """Relative CPI error vs a reference run."""
        if reference.cpi == 0:
            raise ZeroDivisionError("reference has zero CPI")
        return abs(self.cpi - reference.cpi) / reference.cpi

    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Plain-data view of the report (JSON-serializable)."""
        from dataclasses import asdict

        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        """JSON rendering of the report."""
        import json

        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationReport":
        """Reconstruct a report from :meth:`to_dict` output (the report
        cache's storage form).  JSON turns tuples into lists, so tuple
        fields are restored; unknown keys are ignored for forward
        compatibility with older cache entries."""
        from dataclasses import fields as dc_fields

        known = {f.name for f in dc_fields(cls)}
        payload = {k: v for k, v in data.items() if k in known}
        payload["intervals"] = [
            r if isinstance(r, IntervalSummary) else IntervalSummary(**r)
            for r in payload.get("intervals", ())
        ]
        payload["bound_history"] = [
            tuple(point) for point in payload.get("bound_history", ())
        ]
        return cls(**payload)

    # ------------------------------------------------------------------ #

    def digest(self) -> str:
        """SHA-256 digest of the determinism-contract fields.

        Two runs with identical configuration and seed must produce
        identical digests, and performance work on the simulation kernel
        must keep digests bit-for-bit unchanged (see README "Performance").
        Floats are hashed via ``float.hex`` so the digest is sensitive to
        the last ulp; the host-side fields (sim time, step counts) are
        included deliberately — they pin down the *schedule*, not just the
        target-side results, so a reordered host interleaving cannot slip
        through.
        """
        import hashlib
        import json

        payload = {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "num_cores": self.num_cores,
            "seed": self.seed,
            "target_cycles": self.target_cycles,
            "instructions": self.instructions,
            "cpi": float(self.cpi).hex(),
            "per_core_cpi": [float(c).hex() for c in self.per_core_cpi],
            "l1_miss_rate": float(self.l1_miss_rate).hex(),
            "l2_miss_rate": float(self.l2_miss_rate).hex(),
            "bus_requests": self.bus_requests,
            "violation_counts": dict(sorted(self.violation_counts.items())),
            "sim_time_s": float(self.sim_time_s).hex(),
            "manager_steps": self.manager_steps,
            "core_steps": self.core_steps,
            "checkpoints": self.checkpoints,
            "rollbacks": self.rollbacks,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #

    def summary(self) -> str:
        """A short human-readable summary."""
        lines = [
            f"{self.benchmark} / {self.scheme}: "
            f"{self.target_cycles} target cycles, CPI {self.cpi:.3f}, "
            f"sim time {self.sim_time_s:.3f}s",
            f"  violations: {self.violation_counts} "
            f"(rate {self.violation_rate:.6f}/cycle)",
        ]
        if self.final_bound is not None:
            lines.append(
                f"  adaptive: final bound {self.final_bound}, "
                f"avg {self.average_bound:.1f}, {self.bound_adjustments} adjustments"
            )
        if self.checkpoints:
            lines.append(
                f"  checkpoints: {self.checkpoints} "
                f"(cost {self.checkpoint_cost_s:.3f}s), rollbacks {self.rollbacks}"
            )
        return "\n".join(lines)
