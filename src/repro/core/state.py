"""Snapshot-able simulation state.

Everything that defines the *simulation* (target machine state, workload
progress, event queues, clocks, scheme dynamics, violation monitors) hangs
off one :class:`SimulationState` root with no references to host-side
objects (scheduler, contexts, statistics).  Checkpointing (paper section
5.1) captures this root copy-on-write (``repro.core.snapshot``) — the
in-memory analogue of SlackSim's ``fork()`` snapshot — and rollback
replaces the root, leaving host clocks (wasted time included) untouched,
exactly as a real rollback wastes real wall-clock time.

Per-core clocks live in flat banks on the root (``local_times`` /
``max_local_times``, indexed by core), so the manager's window updates and
the global-time/horizon folds sweep two int lists instead of chasing
per-core attributes.  :class:`CoreState` exposes the historic
``local_time``/``max_local_time`` attributes as properties over the banks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.config import TargetConfig
from repro.core.events import InMsg, InMsgKind, OutMsg
from repro.core.schemes.base import SchemePolicy
from repro.cpu.core import CoreModel
from repro.errors import SimulationError


# repro: hot-path
class CoreState:
    """One core thread's simulation state: model, clocks, queues.

    The clocks are views into the owning :class:`SimulationState`'s flat
    banks; a free-standing CoreState (tests) gets private one-element
    banks until a root adopts it.
    """

    __slots__ = ("core_id", "model", "outq", "inq", "_times", "_limits", "_idx")

    def __init__(self, core_id: int, model: CoreModel) -> None:
        self.core_id = core_id
        self.model = model
        self._times: List[int] = [0]  # completed target cycles
        self._limits: List[Optional[int]] = [1]  # None = unbounded
        self._idx = 0
        self.outq: Deque[OutMsg] = deque()
        self.inq: Deque[InMsg] = deque()

    @property
    def local_time(self) -> int:
        return self._times[self._idx]

    @local_time.setter
    def local_time(self, value: int) -> None:
        self._times[self._idx] = value

    @property
    def max_local_time(self) -> Optional[int]:
        return self._limits[self._idx]

    @max_local_time.setter
    def max_local_time(self, value: Optional[int]) -> None:
        self._limits[self._idx] = value

    @property
    def finished(self) -> bool:
        """True once the workload thread on this core has ended."""
        return self.model.finished

    @property
    def at_limit(self) -> bool:
        """True when the slack window forbids simulating another cycle."""
        limit = self._limits[self._idx]
        return limit is not None and self._times[self._idx] >= limit

    def _adopt(self, times: List[int], limits: List[Optional[int]], idx: int) -> None:
        """Rebind this core's clocks onto the root's shared banks."""
        times[idx] = self._times[self._idx]
        limits[idx] = self._limits[self._idx]
        self._times = times
        self._limits = limits
        self._idx = idx


class SimulationState:
    """Root of the snapshot-able object graph."""

    def __init__(
        self,
        target: TargetConfig,
        cores: List[CoreState],
        manager: "ManagerState",  # noqa: F821 - circular import avoided
        scheme: SchemePolicy,
    ) -> None:
        self.target = target
        self.cores = cores
        self.manager = manager
        self.scheme = scheme
        # Flat per-core clock banks (single source of truth; CoreState
        # properties index into them).
        self.local_times: List[int] = [0] * len(cores)
        self.max_local_times: List[Optional[int]] = [1] * len(cores)
        for idx, cs in enumerate(cores):
            cs._adopt(self.local_times, self.max_local_times, idx)
        # Parallel view of the core models for the per-service folds below
        # (skips two attribute chases per core per fold; deepcopy keeps the
        # aliasing with cores[i].model via the memo).
        self._models = [cs.model for cs in cores]

    @property
    def all_finished(self) -> bool:
        """True when every workload thread has ended."""
        return all(model.finished for model in self._models)

    def global_time(self) -> int:
        """Smallest local time over *running* cores (paper's global time).

        Cores blocked on workload synchronization are descheduled — their
        clocks are frozen and they will warp forward to the grant timestamp
        — so they are excluded from the minimum (otherwise a barrier would
        freeze the global time and deadlock the window).  When every
        unfinished core is sync-blocked, the minimum over those is used;
        when every core has finished, the *largest* local time is returned:
        that is the target execution time of the run.
        """
        if not self.cores:
            raise SimulationError("simulation has no cores")
        times = self.local_times
        running: Optional[int] = None
        fallback: Optional[int] = None
        for model, local in zip(self._models, times):
            if model.finished:
                continue
            if not model.waiting_sync:
                if running is None or local < running:
                    running = local
            elif fallback is None or local < fallback:
                fallback = local
        if running is not None:
            return running
        if fallback is not None:
            return fallback
        return max(times)

    def service_horizon(self) -> Optional[int]:
        """Timestamp horizon for conservative event service.

        A *running* core cannot post an event stamped below its local time,
        so it contributes its local time.  A sync-blocked core is frozen:
        it contributes the timestamp of a grant already delivered to its
        InQ (it will resume exactly there), or nothing at all when no grant
        is pending — its eventual grant is floored at the largest
        already-served timestamp by the manager (see
        ``ManagerState._grant_floor``), so no smaller-stamped event can
        ever emerge from it.  Excluding frozen cores is what lets the
        horizon advance past a barrier wait instead of deadlocking.
        Returns None (unbounded) when no core constrains the horizon.
        """
        times = self.local_times
        horizon: Optional[int] = None
        grant = InMsgKind.SYNC_GRANT
        for idx, cs in enumerate(self.cores):
            model = cs.model
            if model.finished:
                continue
            if model.waiting_sync:
                bound = None
                for msg in cs.inq:
                    if msg.kind == grant and (bound is None or msg.ts < bound):
                        bound = msg.ts
                if bound is None:
                    continue
            else:
                bound = times[idx]
            if horizon is None or bound < horizon:
                horizon = bound
        return horizon

    def execution_time(self) -> int:
        """Target execution time: the largest local time reached."""
        return max(self.local_times)

    def total_instructions(self) -> int:
        """Committed instructions across all cores."""
        return sum(cs.model.instructions for cs in self.cores)
