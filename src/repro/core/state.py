"""Snapshot-able simulation state.

Everything that defines the *simulation* (target machine state, workload
progress, event queues, clocks, scheme dynamics, violation monitors) hangs
off one :class:`SimulationState` root with no references to host-side
objects (scheduler, contexts, statistics).  Checkpointing (paper section
5.1) is then a single ``copy.deepcopy`` of the root — the in-memory
analogue of SlackSim's ``fork()`` snapshot — and rollback replaces the
root, leaving host clocks (wasted time included) untouched, exactly as a
real rollback wastes real wall-clock time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.config import TargetConfig
from repro.core.events import InMsg, InMsgKind, OutMsg
from repro.core.schemes.base import SchemePolicy
from repro.cpu.core import CoreModel
from repro.errors import SimulationError


# repro: hot-path
class CoreState:
    """One core thread's simulation state: model, clocks, queues."""

    __slots__ = ("core_id", "model", "local_time", "max_local_time", "outq", "inq")

    def __init__(self, core_id: int, model: CoreModel) -> None:
        self.core_id = core_id
        self.model = model
        self.local_time = 0  # completed target cycles
        self.max_local_time: Optional[int] = 1  # None = unbounded
        self.outq: Deque[OutMsg] = deque()
        self.inq: Deque[InMsg] = deque()

    @property
    def finished(self) -> bool:
        """True once the workload thread on this core has ended."""
        return self.model.finished

    @property
    def at_limit(self) -> bool:
        """True when the slack window forbids simulating another cycle."""
        return self.max_local_time is not None and self.local_time >= self.max_local_time


class SimulationState:
    """Root of the snapshot-able object graph."""

    def __init__(
        self,
        target: TargetConfig,
        cores: List[CoreState],
        manager: "ManagerState",  # noqa: F821 - circular import avoided
        scheme: SchemePolicy,
    ) -> None:
        self.target = target
        self.cores = cores
        self.manager = manager
        self.scheme = scheme

    @property
    def all_finished(self) -> bool:
        """True when every workload thread has ended."""
        return all(cs.finished for cs in self.cores)

    def global_time(self) -> int:
        """Smallest local time over *running* cores (paper's global time).

        Cores blocked on workload synchronization are descheduled — their
        clocks are frozen and they will warp forward to the grant timestamp
        — so they are excluded from the minimum (otherwise a barrier would
        freeze the global time and deadlock the window).  When every
        unfinished core is sync-blocked, the minimum over those is used;
        when every core has finished, the *largest* local time is returned:
        that is the target execution time of the run.
        """
        if not self.cores:
            raise SimulationError("simulation has no cores")
        running: Optional[int] = None
        for cs in self.cores:
            model = cs.model
            if not model.finished and not model.waiting_sync:
                local = cs.local_time
                if running is None or local < running:
                    running = local
        if running is not None:
            return running
        unfinished = [cs.local_time for cs in self.cores if not cs.finished]
        if unfinished:
            return min(unfinished)
        return max(cs.local_time for cs in self.cores)

    def service_horizon(self) -> Optional[int]:
        """Timestamp horizon for conservative event service.

        A *running* core cannot post an event stamped below its local time,
        so it contributes its local time.  A sync-blocked core is frozen:
        it contributes the timestamp of a grant already delivered to its
        InQ (it will resume exactly there), or nothing at all when no grant
        is pending — its eventual grant is floored at the largest
        already-served timestamp by the manager (see
        ``ManagerState._grant_floor``), so no smaller-stamped event can
        ever emerge from it.  Excluding frozen cores is what lets the
        horizon advance past a barrier wait instead of deadlocking.
        Returns None (unbounded) when no core constrains the horizon.
        """
        horizon: Optional[int] = None
        for cs in self.cores:
            if cs.finished:
                continue
            if cs.model.waiting_sync:
                pending = [
                    msg.ts for msg in cs.inq if msg.kind == InMsgKind.SYNC_GRANT
                ]
                if not pending:
                    continue
                bound = min(pending)
            else:
                bound = cs.local_time
            if horizon is None or bound < horizon:
                horizon = bound
        return horizon

    def execution_time(self) -> int:
        """Target execution time: the largest local time reached."""
        return max(cs.local_time for cs in self.cores)

    def total_instructions(self) -> int:
        """Committed instructions across all cores."""
        return sum(cs.model.instructions for cs in self.cores)
