"""Event records flowing between core threads and the simulation manager.

SlackSim's communication fabric (paper section 2): each core thread owns an
outgoing queue (OutQ) and an incoming queue (InQ); the manager consolidates
all OutQs into one global queue (GQ).  Every entry carries a *timestamp* in
target time; OutQ entries additionally carry the modeled host time at which
they were posted, which is what defines the manager's arrival order — the
order whose divergence from timestamp order constitutes a simulation
violation.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional

from repro.cpu.core import CoreRequest
from repro.memory.mesi import MesiState


# repro: hot-path
class OutMsg:
    """One OutQ/GQ entry: a core's request to the manager."""

    __slots__ = ("core_id", "ts", "host_time", "request")

    def __init__(self, core_id: int, ts: int, host_time: float, request: CoreRequest) -> None:
        self.core_id = core_id
        self.ts = ts  # target time the request takes effect
        self.host_time = host_time  # modeled host time it was posted
        self.request = request

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OutMsg(core={self.core_id}, ts={self.ts}, {self.request!r})"

    def __deepcopy__(self, memo) -> "OutMsg":
        # Immutable once posted: snapshots share entries instead of copying.
        return self


class InMsgKind(IntEnum):
    """Kinds of manager-to-core deliveries."""

    FILL = 0  #: a bus transaction completed; install the line
    SYNC_GRANT = 1  #: lock granted or barrier released
    INVALIDATE = 2  #: remote GETX/UPGR snoop hit
    DOWNGRADE = 3  #: remote GETS snoop hit on an exclusive copy
    IFILL = 4  #: an instruction-line fetch completed (L1I install)


# repro: hot-path
class InMsg:
    """One InQ entry: a manager notification to a core thread.

    The core thread applies the entry when its local time reaches ``ts``
    (or immediately when ``ts`` is already in its local past — the slack
    time-distortion case).
    """

    __slots__ = ("kind", "ts", "line_addr", "state")

    def __init__(
        self,
        kind: InMsgKind,
        ts: int,
        line_addr: int = 0,
        state: Optional[MesiState] = None,
    ) -> None:
        self.kind = kind
        self.ts = ts
        self.line_addr = line_addr
        self.state = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InMsg({self.kind.name}, ts={self.ts}, line={self.line_addr})"

    def __deepcopy__(self, memo) -> "InMsg":
        # Immutable once delivered: snapshots share entries instead of
        # copying.
        return self
