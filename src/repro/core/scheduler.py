"""Deterministic discrete-event scheduler for the modeled host.

This is the substitution at the heart of the reproduction (DESIGN.md
section 2): instead of real POSIX threads — whose parallel speedup Python
cannot exhibit — the scheduler executes simulation threads one step at a
time on modeled host contexts, always picking the thread with the earliest
possible dispatch time.  Everything the paper measures emerges from this
schedule: barrier serialization makes cycle-by-cycle slow, slack absorbs
load imbalance, host-time interleaving determines the manager's event
arrival order (and therefore violations), and checkpoint costs pause every
context.

The run is bit-for-bit deterministic for a given host seed.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush, heapreplace
from operator import attrgetter
from typing import Callable, List, Optional, Tuple

from repro.config import HostConfig
from repro.core.hostmodel import HostContext, HostThread, ThreadState
from repro.core.threads import CoreRunner, ManagerRunner, StepResult, SubManagerRunner
from repro.errors import DeadlockError
from repro.util import SplitMix64

#: Consecutive all-idle manager steps before declaring deadlock.
_DEADLOCK_LIMIT = 200_000

_CLOCK_KEY = attrgetter("clock")
_READY = ThreadState.READY
_MASK64 = (1 << 64) - 1


class HostStats:
    """Host-side accounting accumulated over a run (never rolled back)."""

    def __init__(self, num_contexts: int) -> None:
        self.manager_steps = 0
        self.core_steps = 0
        self.wakeups = 0
        self.context_busy_ns = [0.0] * num_contexts
        self.manager_busy_ns = 0.0
        self.submanager_busy_ns = 0.0
        # Checkpoint/rollback accounting is filled in by the controller.
        self.checkpoints = 0
        self.checkpoint_cost_ns = 0.0
        self.rollbacks = 0
        self.rollback_cost_ns = 0.0
        self.wasted_target_cycles = 0
        self.replay_target_cycles = 0
        self.violations_observed = 0  # includes violations later rolled back


class Scheduler:
    """Runs the whole parallel simulation on the modeled host."""

    def __init__(self, sim, host: HostConfig) -> None:
        self.sim = sim
        self.host = host
        self._manager_migrates = host.manager_migrates
        self.contexts = [HostContext(i) for i in range(host.num_contexts)]
        self.stats = HostStats(host.num_contexts)
        # Telemetry (host-side, observation only; None when not attached).
        self._telemetry = getattr(sim, "telemetry", None)

        seed_root = SplitMix64(host.seed)
        self.threads: List[HostThread] = []
        # Ready heap over every thread except the manager, keyed by
        # (dispatch, ready_time, position).  Core/sub-manager keys only
        # grow over a run (context clocks and ready times are monotone),
        # so entries are lower bounds and can be fixed lazily at the top.
        # The manager is excluded: migration can *decrease* its dispatch
        # time, so its key is recomputed fresh on every pick.
        self._heap: List[Tuple[float, float, int, HostThread]] = []
        # Cached min-clock context for manager migration (None = recompute).
        # Valid because context clocks only grow inside the run loop: the
        # cached first-minimum stays the first minimum until *its own*
        # clock advances.  Invalidated by pause_all_contexts.
        self._migrate_min: Optional[HostContext] = None
        # Threads currently not READY (each exactly once); lets the wake
        # scan touch only sleepers instead of every thread.
        self._parked: List[HostThread] = []
        # True while a thread parked since the last wake scan: a thread
        # can park already wake-eligible (e.g. a stall skip landing on its
        # pacing limit with an InQ entry due right there), so the scan
        # after the next manager step must run even if that step was a
        # no-op.
        self._parked_dirty = True
        num_cores = len(sim.state.cores)
        for index in range(num_cores):
            runner = CoreRunner(index, sim, host)
            context = self.contexts[index % host.num_contexts]
            thread = HostThread(runner, context, seed_root.fork())
            context.threads.append(thread)
            self.threads.append(thread)

        # Hierarchical manager (optional): sub-managers each consolidate a
        # round-robin group of cores; the top manager serves the bus/L2.
        direct_cores = None
        next_slot = num_cores
        if host.num_submanagers > 0:
            groups: List[List[int]] = [[] for _ in range(host.num_submanagers)]
            for index in range(num_cores):
                groups[index % host.num_submanagers].append(index)
            for gid, group in enumerate(groups):
                context = self.contexts[next_slot % host.num_contexts]
                thread = HostThread(
                    SubManagerRunner(gid, sim, host, group), context, seed_root.fork()
                )
                context.threads.append(thread)
                self.threads.append(thread)
                next_slot += 1
            direct_cores = []  # every core is covered by a sub-manager

        manager_context = self.contexts[next_slot % host.num_contexts]
        self.manager_thread = HostThread(
            ManagerRunner(sim, host, direct_cores=direct_cores),
            manager_context,
            seed_root.fork(),
        )
        manager_context.threads.append(self.manager_thread)
        self.threads.append(self.manager_thread)

        for pos, thread in enumerate(self.threads):
            thread.pos = pos
        for thread in self.threads:
            if thread is not self.manager_thread:
                self._enqueue(thread)

    def _enqueue(self, thread: HostThread) -> None:
        """Add a (non-manager) thread to the ready heap with its exact key."""
        if thread.queued:
            return  # its live entry will be lazily re-keyed at the top
        dispatch = thread.context.clock
        ready = thread.ready_time
        if ready > dispatch:
            dispatch = ready
        heapq.heappush(self._heap, (dispatch, ready, thread.pos, thread))
        thread.queued = True

    # ------------------------------------------------------------------ #

    def run(
        self,
        max_target_cycles: Optional[int] = None,
        stop_when: Optional[Callable[..., bool]] = None,
    ) -> HostStats:
        """Run to completion; return host statistics.

        ``max_target_cycles`` is a safety net: the run aborts with
        :class:`DeadlockError` if the target execution time exceeds it.

        ``stop_when`` (optional) is evaluated with the manager's
        :class:`~repro.core.manager.ServiceOutcome` at the end of every
        manager step; returning True suspends the run at that point.  The
        suspension is resumable: every piece of scheduler state (heap
        membership, parked list, context clocks, statistics) is left
        exactly as the loop maintains it, so a subsequent ``run`` call on
        the same scheduler continues the simulation bit-for-bit as if it
        had never stopped.  This is the epoch-cut seam used by
        ``repro.core.epochs`` / ``repro.harness.timepar``.
        """
        sim = self.sim
        stats = self.stats
        busy_ns = stats.context_busy_ns
        cost_cfg = self.host.cost
        jitter_frac = cost_cfg.jitter_frac
        context_switch_ns = cost_cfg.context_switch_ns
        manager_thread = self.manager_thread
        num_cores = len(sim.state.cores)
        heap = self._heap
        controller = sim.controller  # fixed for the life of the Simulation
        telemetry = self._telemetry
        sanitizer = getattr(sim, "sanitizer", None)
        idle_manager_steps = 0
        last_state = None
        models = cores = None
        # Termination can only newly hold after a core reports done (a
        # model finished) or a rollback swaps the root; ``check_done``
        # re-arms on exactly those events, sparing the finished-sweep on
        # the bulk of iterations.  Once every model is finished the flag
        # stays armed until the quiescence conditions drain.
        check_done = True
        migrates = self._manager_migrates
        contexts = self.contexts
        _ready = _READY
        while True:
            state = sim.state
            if state is not last_state:
                last_state = state
                cores = state.cores
                models = state._models
                check_done = True
            if check_done:
                for model in models:
                    if not model.finished:
                        check_done = False
                        break
                else:
                    if state.manager.quiescent(state) and all(
                        not cs.inq for cs in cores
                    ):
                        break

            # _pick() inlined (the method remains the single-step API for
            # tests/controllers; keep the two in lockstep).  Inlining
            # saves a call, the manager/heap attribute loads, and the
            # tuple allocations for the manager-vs-top comparison on
            # every scheduler iteration.
            have_manager = manager_thread.state == _ready
            m_dispatch = 0.0
            m_ready = 0.0
            if have_manager:
                if migrates:
                    target = self._migrate_min
                    if target is None:
                        target = contexts[0]
                        best = target.clock
                        for ctx in contexts:
                            clock = ctx.clock
                            if clock < best:
                                best = clock
                                target = ctx
                        self._migrate_min = target
                    mctx = manager_thread.context
                    if target is not mctx:
                        # ThreadSet.remove/append inlined (dict-backed);
                        # the manager migrates on most picks.
                        del mctx.threads._items[manager_thread]
                        target.threads._items[manager_thread] = None
                        manager_thread.context = target
                m_ready = manager_thread.ready_time
                m_dispatch = manager_thread.context.clock
                if m_ready > m_dispatch:
                    m_dispatch = m_ready
            thread = None
            start = m_dispatch
            while heap:
                dispatch, ready, pos, cand = heap[0]
                if cand.state != _ready:
                    heappop(heap)
                    cand.queued = False
                    continue
                cur_ready = cand.ready_time
                cur_dispatch = cand.context.clock
                if cur_ready > cur_dispatch:
                    cur_dispatch = cur_ready
                if cur_dispatch != dispatch or cur_ready != ready:
                    heapreplace(heap, (cur_dispatch, cur_ready, pos, cand))
                    continue
                # Validated minimum of the non-manager threads; the
                # manager is last in thread order, so it wins only
                # strictly (scalar compare == tuple compare, no allocs).
                if not have_manager or (
                    m_dispatch > dispatch
                    or (m_dispatch == dispatch and m_ready >= ready)
                ):
                    heappop(heap)
                    cand.queued = False
                    thread = cand
                    start = dispatch
                else:
                    thread = manager_thread
                break
            if thread is None:
                if not have_manager:  # pragma: no cover
                    raise DeadlockError("no runnable simulation thread")
                thread = manager_thread

            result: StepResult = thread.runner.step(start)
            cost = result.cost_ns
            if jitter_frac > 0.0:
                # Jitter draw with SplitMix64.next_float inlined (every
                # HostThread rng is a SplitMix64 fork of the host seed;
                # this is the hottest RNG call site in a run).
                rng = thread.rng
                s = (rng.state + 0x9E3779B97F4A7C15) & _MASK64
                rng.state = s
                z = ((s ^ (s >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
                z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
                u = ((z ^ (z >> 31)) >> 11) * (1.0 / (1 << 53))
                cost *= 1.0 + jitter_frac * (2.0 * u - 1.0)
            context = thread.context
            if context.last_thread is not thread and len(context.threads._items) > 1:
                cost += context_switch_ns
            context.last_thread = thread
            end = start + cost
            context.clock = end
            thread.ready_time = end
            thread.steps += 1
            busy_ns[context.index] += cost
            if context is self._migrate_min:
                self._migrate_min = None  # its clock advanced; recompute

            if thread is manager_thread:
                stats.manager_steps += 1
                outcome = result.outcome
                if not outcome.idle:
                    stats.manager_busy_ns += cost
                stats.violations_observed += len(outcome.violations)
                if telemetry is not None and telemetry.enabled:
                    for violation in outcome.violations:
                        telemetry.on_violation(violation)
                    sampler = telemetry.sampler
                    if sampler is not None:
                        sampler.maybe_sample(self, outcome, context.clock)
                if controller is not None:
                    controller.after_manager_step(self, outcome, context.clock)
                if outcome.maybe_wake or self._parked_dirty:
                    self._parked_dirty = False
                    self._wake_cores(context.clock)
                idle_manager_steps = idle_manager_steps + 1 if outcome.idle else 0
                if idle_manager_steps > _DEADLOCK_LIMIT:
                    raise DeadlockError(self._deadlock_report())
                if max_target_cycles is not None and outcome.global_time > max_target_cycles:
                    raise DeadlockError(
                        f"target execution exceeded {max_target_cycles} cycles "
                        "(runaway simulation; check the workload's barriers)"
                    )
                if stop_when is not None and stop_when(outcome):
                    # Epoch cut: every loop invariant holds at the end of a
                    # manager step (heap/parked membership, clocks, stats),
                    # so breaking here leaves the scheduler resumable.
                    break
            elif thread.pos < num_cores:  # core runner
                stats.core_steps += 1
                if sanitizer is not None and sanitizer.enabled:
                    # Re-fetch through sim.state: a rollback swaps the root.
                    pos = thread.pos
                    st = sim.state
                    sanitizer.on_core_step(
                        pos, st.local_times[pos], st.max_local_times[pos]
                    )
                if result.done:
                    check_done = True  # a model may have just finished
                    thread.state = ThreadState.DONE
                    self._parked.append(thread)
                    self._parked_dirty = True
                elif result.blocked:
                    thread.state = ThreadState.BLOCKED
                    self._parked.append(thread)
                    self._parked_dirty = True
                elif not thread.queued:
                    # _enqueue inlined: the context clock and ready time
                    # both equal ``end`` right after the step.
                    heappush(heap, (end, end, thread.pos, thread))
                    thread.queued = True
            else:  # sub-manager
                stats.submanager_busy_ns += cost
                if not thread.queued:
                    heappush(heap, (end, end, thread.pos, thread))
                    thread.queued = True

        return self.stats

    # ------------------------------------------------------------------ #

    def _pick(self):
        """Choose the READY thread with the earliest dispatch time.

        Dispatch time is ``max(context clock, thread ready time)``; ties
        break by ready time (least-recently-run first, so threads sharing
        a context interleave fairly) then thread position, keeping runs
        deterministic.  Selection is a heap pop with lazy re-keying —
        stored keys are lower bounds, so a stale top is re-pushed with its
        exact key until the top validates — plus a fresh comparison
        against the (heap-excluded) manager.
        """
        manager = self.manager_thread
        have_manager = manager.state == _READY
        m_dispatch = 0.0
        m_ready = 0.0
        if have_manager:
            if self._manager_migrates:
                # The OS load-balances the odd thread out (9 simulation
                # threads on 8 contexts): the manager migrates to the
                # least-loaded context instead of starving one core thread
                # into a permanent laggard.  (manager_migrates=False pins
                # it — ablation A3.)
                target = self._migrate_min
                if target is None:
                    # First-minimum scan over the context clocks (min() with
                    # a key lambda costs a function call per context; this
                    # loop is hit after nearly every manager advance).
                    contexts = self.contexts
                    target = contexts[0]
                    best = target.clock
                    for ctx in contexts:
                        clock = ctx.clock
                        if clock < best:
                            best = clock
                            target = ctx
                    self._migrate_min = target
                if target is not manager.context:
                    manager.context.threads.remove(manager)
                    target.threads.append(manager)
                    manager.context = target
            m_ready = manager.ready_time
            m_dispatch = manager.context.clock
            if m_ready > m_dispatch:
                m_dispatch = m_ready

        heap = self._heap
        while heap:
            dispatch, ready, pos, thread = heap[0]
            if thread.state != _READY:
                heappop(heap)
                thread.queued = False
                continue
            cur_ready = thread.ready_time
            cur_dispatch = thread.context.clock
            if cur_ready > cur_dispatch:
                cur_dispatch = cur_ready
            if cur_dispatch != dispatch or cur_ready != ready:
                heapreplace(heap, (cur_dispatch, cur_ready, pos, thread))
                continue
            # Validated minimum of the non-manager threads; the manager is
            # last in thread order, so it wins only strictly.
            if have_manager and (m_dispatch, m_ready) < (dispatch, ready):
                return manager, m_dispatch
            heappop(heap)
            thread.queued = False
            return thread, dispatch

        if have_manager:
            return manager, m_dispatch
        raise DeadlockError("no runnable simulation thread")  # pragma: no cover

    def _wake_cores(self, manager_end: float) -> None:
        """Wake core threads whose blocking condition cleared.

        The manager raises max local times during its step; a woken thread
        resumes after the modeled futex wake latency.
        """
        parked = self._parked
        if not parked:
            return
        wake_at = manager_end + self.host.cost.wake_latency_ns
        cores = self.sim.state.cores
        done = ThreadState.DONE
        ready = ThreadState.READY
        still_parked: List[HostThread] = []
        for thread in parked:
            # Only core runners are ever parked, and core threads occupy
            # positions [0, num_cores), so pos doubles as the core index.
            cs = cores[thread.pos]
            if thread.state == done:
                # A finished core thread briefly revives to drain coherence
                # messages still addressed to it.
                if not cs.inq:
                    still_parked.append(thread)
                    continue
            else:
                # _core_runnable inlined: this loop runs for every parked
                # thread after every manager step.
                model = cs.model
                if not model.finished:
                    inq = cs.inq
                    if model.waiting_sync:
                        if not inq:
                            still_parked.append(thread)
                            continue
                    else:
                        idx = cs._idx
                        local = cs._times[idx]
                        if not inq or inq[0].ts > local:
                            max_local = cs._limits[idx]
                            if max_local is not None and local >= max_local:
                                still_parked.append(thread)
                                continue
                self.stats.wakeups += 1
            thread.state = ready
            if thread.ready_time < wake_at:
                thread.ready_time = wake_at
            self._enqueue(thread)
        self._parked = still_parked

    @staticmethod
    def _core_runnable(cs) -> bool:
        """True when a core thread can make progress right now."""
        model = cs.model
        if model.finished:
            return True  # let its runner report done and retire
        inq = cs.inq
        if model.waiting_sync:
            return bool(inq)  # descheduled until something is delivered
        idx = cs._idx
        local = cs._times[idx]
        if inq and inq[0].ts <= local:
            return True
        max_local = cs._limits[idx]
        return max_local is None or local < max_local

    def wake_all(self, at_time: float) -> None:
        """Used by the speculative controller after checkpoint/rollback."""
        parked: List[HostThread] = []
        for thread in self.threads:
            if thread is self.manager_thread:
                thread.ready_time = max(thread.ready_time, at_time)
                continue
            cs = self.sim.state.cores[thread.runner.index]
            thread.state = ThreadState.DONE if cs.finished else ThreadState.READY
            thread.ready_time = max(thread.ready_time, at_time)
            if thread.state == ThreadState.READY:
                self._enqueue(thread)
            else:
                parked.append(thread)
        self._parked = parked
        self._parked_dirty = True

    def pause_all_contexts(self, cost_ns: float) -> float:
        """Global pause: synchronize every context, charge ``cost_ns``.

        Models "all threads must synchronize, establish a consistent
        checkpoint, and then proceed" (paper section 5.1).  Returns the
        post-pause host time.
        """
        barrier_time = max(context.clock for context in self.contexts)
        resume = barrier_time + cost_ns
        for context in self.contexts:
            context.clock = resume
        self._migrate_min = None  # every clock changed; recompute the min
        return resume

    def simulation_time_ns(self) -> float:
        """The run's modeled wall-clock: the largest context clock."""
        return max(context.clock for context in self.contexts)

    def _deadlock_report(self) -> str:
        """Everything needed to debug a stuck run from the error alone:
        the global time, each core's simulation-side blocking condition,
        and each host thread's scheduling state (the stuck thread ids)."""
        state = self.sim.state
        lines = [
            "simulation deadlock: manager idle with no core progress "
            f"(> {_DEADLOCK_LIMIT} consecutive idle manager steps).",
            f"global time: {state.manager.global_time}",
            f"simulation time: {self.simulation_time_ns():.0f} ns",
        ]
        for cs in state.cores:
            lines.append(
                f"  core {cs.core_id}: local={cs.local_time} "
                f"max_local={cs.max_local_time} finished={cs.finished} "
                f"waiting_sync={cs.model.waiting_sync} inq={len(cs.inq)}"
            )
        lines.append("host threads:")
        for thread in self.threads:
            lines.append(
                f"  thread {thread.pos} ({type(thread.runner).__name__}): "
                f"state={thread.state.name} context={thread.context.index} "
                f"ready={thread.ready_time:.0f} steps={thread.steps}"
            )
        return "\n".join(lines)
