"""Deterministic discrete-event scheduler for the modeled host.

This is the substitution at the heart of the reproduction (DESIGN.md
section 2): instead of real POSIX threads — whose parallel speedup Python
cannot exhibit — the scheduler executes simulation threads one step at a
time on modeled host contexts, always picking the thread with the earliest
possible dispatch time.  Everything the paper measures emerges from this
schedule: barrier serialization makes cycle-by-cycle slow, slack absorbs
load imbalance, host-time interleaving determines the manager's event
arrival order (and therefore violations), and checkpoint costs pause every
context.

The run is bit-for-bit deterministic for a given host seed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import HostConfig
from repro.core.hostmodel import HostContext, HostThread, ThreadState
from repro.core.threads import CoreRunner, ManagerRunner, StepResult, SubManagerRunner
from repro.errors import DeadlockError
from repro.util import SplitMix64

#: Consecutive all-idle manager steps before declaring deadlock.
_DEADLOCK_LIMIT = 200_000


class HostStats:
    """Host-side accounting accumulated over a run (never rolled back)."""

    def __init__(self, num_contexts: int) -> None:
        self.manager_steps = 0
        self.core_steps = 0
        self.wakeups = 0
        self.context_busy_ns = [0.0] * num_contexts
        self.manager_busy_ns = 0.0
        self.submanager_busy_ns = 0.0
        # Checkpoint/rollback accounting is filled in by the controller.
        self.checkpoints = 0
        self.checkpoint_cost_ns = 0.0
        self.rollbacks = 0
        self.rollback_cost_ns = 0.0
        self.wasted_target_cycles = 0
        self.replay_target_cycles = 0
        self.violations_observed = 0  # includes violations later rolled back


class Scheduler:
    """Runs the whole parallel simulation on the modeled host."""

    def __init__(self, sim, host: HostConfig) -> None:
        self.sim = sim
        self.host = host
        self.contexts = [HostContext(i) for i in range(host.num_contexts)]
        self.stats = HostStats(host.num_contexts)

        seed_root = SplitMix64(host.seed)
        self.threads: List[HostThread] = []
        num_cores = len(sim.state.cores)
        for index in range(num_cores):
            runner = CoreRunner(index, sim, host)
            context = self.contexts[index % host.num_contexts]
            thread = HostThread(runner, context, seed_root.fork())
            context.threads.append(thread)
            self.threads.append(thread)

        # Hierarchical manager (optional): sub-managers each consolidate a
        # round-robin group of cores; the top manager serves the bus/L2.
        direct_cores = None
        next_slot = num_cores
        if host.num_submanagers > 0:
            groups: List[List[int]] = [[] for _ in range(host.num_submanagers)]
            for index in range(num_cores):
                groups[index % host.num_submanagers].append(index)
            for gid, group in enumerate(groups):
                context = self.contexts[next_slot % host.num_contexts]
                thread = HostThread(
                    SubManagerRunner(gid, sim, host, group), context, seed_root.fork()
                )
                context.threads.append(thread)
                self.threads.append(thread)
                next_slot += 1
            direct_cores = []  # every core is covered by a sub-manager

        manager_context = self.contexts[next_slot % host.num_contexts]
        self.manager_thread = HostThread(
            ManagerRunner(sim, host, direct_cores=direct_cores),
            manager_context,
            seed_root.fork(),
        )
        manager_context.threads.append(self.manager_thread)
        self.threads.append(self.manager_thread)

    # ------------------------------------------------------------------ #

    def run(self, max_target_cycles: Optional[int] = None) -> HostStats:
        """Run to completion; return host statistics.

        ``max_target_cycles`` is a safety net: the run aborts with
        :class:`DeadlockError` if the target execution time exceeds it.
        """
        sim = self.sim
        idle_manager_steps = 0
        while True:
            state = sim.state
            if (
                state.all_finished
                and state.manager.quiescent(state)
                and all(not cs.inq for cs in state.cores)
            ):
                break

            thread, start = self._pick()
            result: StepResult = thread.runner.step(start)
            cost = result.cost_ns * thread.jitter(self.host.cost.jitter_frac)
            context = thread.context
            if context.shared and context.last_thread is not thread:
                cost += self.host.cost.context_switch_ns
            context.last_thread = thread
            context.clock = start + cost
            thread.ready_time = context.clock
            thread.steps += 1
            self.stats.context_busy_ns[context.index] += cost

            if thread is self.manager_thread:
                self.stats.manager_steps += 1
                if not result.outcome.idle:
                    self.stats.manager_busy_ns += cost
                outcome = result.outcome
                self.stats.violations_observed += len(outcome.violations)
                if sim.controller is not None:
                    sim.controller.after_manager_step(self, outcome, context.clock)
                self._wake_cores(context.clock)
                idle_manager_steps = idle_manager_steps + 1 if outcome.idle else 0
                if idle_manager_steps > _DEADLOCK_LIMIT:
                    raise DeadlockError(self._deadlock_report())
                if max_target_cycles is not None and outcome.global_time > max_target_cycles:
                    raise DeadlockError(
                        f"target execution exceeded {max_target_cycles} cycles "
                        "(runaway simulation; check the workload's barriers)"
                    )
            elif isinstance(thread.runner, CoreRunner):
                self.stats.core_steps += 1
                if result.done:
                    thread.state = ThreadState.DONE
                elif result.blocked:
                    thread.state = ThreadState.BLOCKED
            else:  # sub-manager
                self.stats.submanager_busy_ns += cost

        return self.stats

    # ------------------------------------------------------------------ #

    def _pick(self):
        """Choose the READY thread with the earliest dispatch time.

        Dispatch time is ``max(context clock, thread ready time)``; ties
        break by context index then position, keeping runs deterministic.
        """
        best = None
        best_dispatch = 0.0
        best_ready = 0.0
        for thread in self.threads:
            if thread.state != ThreadState.READY:
                continue
            if thread is self.manager_thread and self.host.manager_migrates:
                # The OS load-balances the odd thread out (9 simulation
                # threads on 8 contexts): the manager migrates to the
                # least-loaded context instead of starving one core thread
                # into a permanent laggard.  (manager_migrates=False pins
                # it — ablation A3.)
                target = min(self.contexts, key=lambda c: c.clock)
                if target is not thread.context:
                    thread.context.threads.remove(thread)
                    target.threads.append(thread)
                    thread.context = target
            dispatch = thread.context.clock
            if thread.ready_time > dispatch:
                dispatch = thread.ready_time
            # Tie-break on ready time (least-recently-run first) so threads
            # sharing a context interleave fairly instead of starving.
            if (
                best is None
                or dispatch < best_dispatch
                or (dispatch == best_dispatch and thread.ready_time < best_ready)
            ):
                best = thread
                best_dispatch = dispatch
                best_ready = thread.ready_time
        if best is None:  # pragma: no cover - manager is always READY
            raise DeadlockError("no runnable simulation thread")
        return best, best_dispatch

    def _wake_cores(self, manager_end: float) -> None:
        """Wake core threads whose blocking condition cleared.

        The manager raises max local times during its step; a woken thread
        resumes after the modeled futex wake latency.
        """
        wake_at = manager_end + self.host.cost.wake_latency_ns
        for thread in self.threads:
            if thread is self.manager_thread or thread.state == ThreadState.READY:
                continue
            cs = self.sim.state.cores[thread.runner.index]
            if thread.state == ThreadState.DONE:
                # A finished core thread briefly revives to drain coherence
                # messages still addressed to it.
                if cs.inq:
                    thread.state = ThreadState.READY
                    if thread.ready_time < wake_at:
                        thread.ready_time = wake_at
                continue
            if self._core_runnable(cs):
                thread.state = ThreadState.READY
                if thread.ready_time < wake_at:
                    thread.ready_time = wake_at
                self.stats.wakeups += 1

    @staticmethod
    def _core_runnable(cs) -> bool:
        """True when a core thread can make progress right now."""
        if cs.finished:
            return True  # let its runner report done and retire
        if cs.model.waiting_sync:
            return bool(cs.inq)  # descheduled until something is delivered
        if cs.inq and cs.inq[0].ts <= cs.local_time:
            return True
        return not cs.at_limit

    def wake_all(self, at_time: float) -> None:
        """Used by the speculative controller after checkpoint/rollback."""
        for thread in self.threads:
            if thread is self.manager_thread:
                thread.ready_time = max(thread.ready_time, at_time)
                continue
            cs = self.sim.state.cores[thread.runner.index]
            thread.state = ThreadState.DONE if cs.finished else ThreadState.READY
            thread.ready_time = max(thread.ready_time, at_time)

    def pause_all_contexts(self, cost_ns: float) -> float:
        """Global pause: synchronize every context, charge ``cost_ns``.

        Models "all threads must synchronize, establish a consistent
        checkpoint, and then proceed" (paper section 5.1).  Returns the
        post-pause host time.
        """
        barrier_time = max(context.clock for context in self.contexts)
        resume = barrier_time + cost_ns
        for context in self.contexts:
            context.clock = resume
        return resume

    def simulation_time_ns(self) -> float:
        """The run's modeled wall-clock: the largest context clock."""
        return max(context.clock for context in self.contexts)

    def _deadlock_report(self) -> str:
        state = self.sim.state
        lines = [
            "simulation deadlock: manager idle with no core progress.",
            f"global time: {state.manager.global_time}",
        ]
        for cs in state.cores:
            lines.append(
                f"  core {cs.core_id}: local={cs.local_time} "
                f"max_local={cs.max_local_time} finished={cs.finished} "
                f"waiting_sync={cs.model.waiting_sync} inq={len(cs.inq)}"
            )
        return "\n".join(lines)
