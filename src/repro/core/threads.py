"""Host-side simulation-thread runners.

A runner is the modeled equivalent of one POSIX thread of SlackSim: it
executes simulation work against the (snapshot-able) simulation state and
reports the modeled host-time cost of each scheduling step.  Runners hold
no simulation state of their own — after a speculative rollback replaces
the state root, the same runners continue against the restored state.
"""

from __future__ import annotations

from typing import Optional

from repro.config import HostConfig, HostCostModel
from repro.core.events import InMsg, InMsgKind, OutMsg
from repro.core.manager import ServiceOutcome
from repro.core.state import CoreState
from repro.cpu.core import _ILP_RATE, CoreRequest, RequestKind
from repro.errors import SimulationError
from repro.isa.operations import OpKind
from repro.memory.l1 import L1Outcome

# Aliases for the inlined pipeline fast path in CoreRunner.step (module
# loads beat enum attribute lookups per issued instruction).
_LOAD = OpKind.LOAD
_STORE = OpKind.STORE
_COMPUTE = OpKind.COMPUTE
_HIT = L1Outcome.HIT
_MISS = L1Outcome.MISS
_MERGED = L1Outcome.MERGED
_BUS = RequestKind.BUS
_LOCK_ACQ = RequestKind.LOCK_ACQUIRE
_BARRIER_ARR = RequestKind.BARRIER_ARRIVE

#: Telemetry labels per request kind (see repro.telemetry).
_KIND_NAMES = {kind: kind.name.lower() for kind in RequestKind}


# repro: hot-path
class StepResult:
    """Outcome of one runner scheduling step."""

    __slots__ = ("cost_ns", "blocked", "done", "outcome")

    def __init__(
        self,
        cost_ns: float,
        blocked: bool = False,
        done: bool = False,
        outcome: Optional[ServiceOutcome] = None,
    ) -> None:
        self.cost_ns = cost_ns
        self.blocked = blocked
        self.done = done
        self.outcome = outcome  # manager steps only


class CoreRunner:
    """Simulates one target core, driving its CoreState/CoreModel.

    Each step simulates up to ``max_batch_cycles`` target cycles (plus
    bulk-skipped stall cycles), delivering due InQ entries before every
    cycle and posting OutQ entries stamped with both target and host time.
    """

    name_prefix = "core"

    def __init__(self, index: int, sim, host: HostConfig) -> None:
        self.index = index
        self.sim = sim  # Simulation facade; state accessed via sim.state
        self.host = host
        self.cost = host.cost
        # Reused result record: one step's result is consumed by the
        # scheduler before the next step runs, so a single instance per
        # runner avoids an allocation per scheduling step.
        self._result = StepResult(0.0)
        # Host cost constants are immutable for the life of the run; the
        # two fused sums fold the per-cycle slack check into the cycle
        # charge (exact: every cost constant is an integer-valued float, so
        # the reassociation cannot round).
        cost = host.cost
        self._cost_binds = (
            cost.per_mem_event_ns,
            cost.per_instruction_ns,
            cost.slack_check_ns,
            cost.core_cycle_ns + cost.slack_check_ns,
            cost.stall_cycle_ns + cost.slack_check_ns,
        )
        self._batch = host.max_batch_cycles
        # Root-stable binds (core state, clock banks, pipeline geometry,
        # program, L1), re-derived only when a rollback installs a fresh
        # root (cs.model is assigned exactly once, in CoreState.__init__,
        # so everything below is fixed for the life of one root).
        self._state_binds: Optional[tuple] = None
        # barrier_sync is fixed when the policy is constructed (and
        # preserved across rollback snapshots), so the per-step barrier
        # check can cache it instead of re-deriving it from the state.
        self._barrier_static = sim.state.scheme.barrier_sync
        # Telemetry (host-side, observation only; None when not attached).
        self._tel = getattr(sim, "telemetry", None)
        # Sanitizer (same seam contract; None in ordinary runs).
        self._san = getattr(sim, "sanitizer", None)
        self._sync_wait_start: Optional[int] = None

    @property
    def name(self) -> str:
        return f"{self.name_prefix}{self.index}"

    def _core_state(self) -> CoreState:
        return self.sim.state.cores[self.index]

    def step(self, host_now: float) -> StepResult:
        # One root-identity check + one tuple unpack replaces the ~10
        # attribute chains the prologue used to pay on every call (with
        # max_batch_cycles=8 this runs roughly once per simulated cycle).
        # Everything in the tuple is fixed for the life of one root:
        # cs.model is assigned exactly once (CoreState.__init__), and the
        # model's outbox/program/L1/pages_touched are object-stable — a
        # rollback installs a fresh SimulationState, caught by the identity
        # check.  The lone exception is ``_pending_loads``, which
        # complete_fill may rebind during an InQ delivery — it is re-read
        # per step and after every delivery point.
        binds = self._state_binds
        state = self.sim.state
        if binds is None or binds[0] is not state:
            cs = state.cores[self.index]
            model = cs.model
            program = model.program
            l1 = model.l1
            binds = (
                state,
                cs,
                model,
                cs.inq,
                cs._times,
                cs._limits,
                cs._idx,
                model.outbox,
                model._icache is None,
                model._issue_width,
                model._window_size,
                program,
                program._buffer,
                l1,
                l1.access_line,
                l1._line_bits,
                model.pages_touched,
                model._page_shift,
            )
            self._state_binds = binds
        (
            _,
            cs,
            model,
            inq,
            times,
            limits,
            cidx,
            outbox,
            fast_pipeline,
            issue_width,
            window_size,
            program,
            op_buffer,
            l1,
            access_line,
            line_bits,
            pages_touched,
            page_shift,
        ) = binds
        (
            per_mem_event_ns,
            per_instruction_ns,
            slack_check_ns,
            cycle_plus_slack_ns,
            stall_plus_slack_ns,
        ) = self._cost_binds
        pending = model._pending_loads
        apply = self._apply
        cost = 0.0
        cycles = 0
        batch = self._batch

        result = self._result
        result.outcome = None
        if model.finished:
            # The workload thread has exited; drain any coherence traffic
            # still addressed to this core so its L1 state stays coherent
            # with the rest of the machine.
            while inq:
                apply(cs, inq.popleft())
                cost += per_mem_event_ns
            result.cost_ns = max(cost, slack_check_ns)
            result.blocked = False
            result.done = True
            return result

        # The InQ only grows between steps (the manager runs then), so the
        # next due timestamp can be cached across cycles and refreshed only
        # after deliveries.
        next_due = inq[0].ts if inq else None
        while cycles < batch:
            # Deliver every InQ entry whose timestamp has been reached (or
            # passed: the slack time-distortion case).
            local = times[cidx]
            if next_due is not None and next_due <= local:
                while inq and inq[0].ts <= local:
                    apply(cs, inq.popleft())
                    cost += per_mem_event_ns
                next_due = inq[0].ts if inq else None
                pending = model._pending_loads  # a FILL may have rebound it
            if model.waiting_sync:
                # A thread blocked on workload synchronization is
                # descheduled (MP_Simplesim executes sync inside the
                # simulator): its clock does not tick.  Drain the InQ —
                # the grant warps the local clock to the grant timestamp.
                cost += self._drain_while_sync_blocked(cs)
                next_due = inq[0].ts if inq else None
                pending = model._pending_loads
                if model.waiting_sync:
                    break  # wait for the manager's grant delivery
                continue
            if model.finished:
                break
            max_local = limits[cidx]
            if max_local is not None and local >= max_local:
                break  # at_limit: the slack window forbids another cycle

            if model._compute_remaining > 1 and not outbox:
                # Inside a compute burst with no due delivery and nothing
                # waiting in the outbox (a FILL delivery can leave a dirty-
                # victim WRITEBACK there, which the next cycle must emit):
                # commit the burst body in bulk (cost accrues per cycle, so
                # modeled host time is bit-for-bit what the per-cycle loop
                # charges).
                m_cap = batch - cycles
                if max_local is not None and max_local - local < m_cap:
                    m_cap = max_local - local
                if next_due is not None:
                    lim = next_due - local
                    if lim < m_cap:
                        m_cap = lim
                if m_cap > 1:
                    m, instrs = model.commit_burst(m_cap)
                    if m:
                        times[cidx] = local + m
                        cycles += m
                        cost += (
                            m * cycle_plus_slack_ns + instrs * per_instruction_ns
                        )
                        tel = self._tel
                        if tel is not None and tel.enabled:
                            tel.on_compute_burst(self.index, local, m, instrs)
                        continue

            if fast_pipeline:
                # CoreModel.cycle inlined for the default (no-icache)
                # configuration: the per-cycle call and its prologue binds
                # are the hottest fixed overhead in the whole run.  Keep in
                # lockstep with CoreModel.cycle — the determinism digest
                # tests pin the equivalence.
                model.cycles += 1
                committed = 0
                slots = issue_width
                issue_seq = model._issue_seq
                while slots > 0:
                    if pending and issue_seq - pending[0][0] >= window_size:
                        break  # reorder window full behind the oldest miss
                    remaining = model._compute_remaining
                    if remaining > 0:
                        take = model._compute_rate
                        if slots < take:
                            take = slots
                        if remaining < take:
                            take = remaining
                        model._compute_remaining = remaining - take
                        issue_seq += take
                        committed += take
                        slots -= take
                        if remaining > take:
                            break
                        continue
                    op = model._current_op
                    if op is None:
                        op = op_buffer.popleft() if op_buffer else program.next_op()
                        model._current_op = op
                        if op is None:
                            break
                    kind = op.kind
                    if kind is _LOAD or kind is _STORE:
                        addr = op.arg1
                        is_store = kind is _STORE
                        if is_store:
                            pages_touched.add(addr >> page_shift)
                        line_addr = addr >> line_bits
                        outcome = access_line(line_addr, is_store, local)
                        if outcome is _HIT:
                            pass
                        elif outcome is _MISS or outcome is _MERGED:
                            if outcome is _MISS:
                                outbox.append(
                                    CoreRequest(_BUS, line_addr, l1.last_bus_op)
                                )
                            if not is_store:
                                pending.append((issue_seq, line_addr))
                        else:
                            break  # BLOCKED or MSHR_FULL: stall this cycle
                        issue_seq += 1
                        model._current_op = None
                        committed += 1
                        slots -= 1
                        continue
                    if kind is _COMPUTE:
                        model._compute_remaining = op.arg1
                        model._compute_rate = _ILP_RATE[op.arg2]
                        model._current_op = None
                        continue
                    model._issue_seq = issue_seq  # _issue_op reads/advances
                    ok = model._issue_op(op, local)
                    issue_seq = model._issue_seq
                    if not ok:
                        break  # structural stall
                    committed += 1
                    slots -= 1
                    if model.waiting_sync or model.finished:
                        break
                model._issue_seq = issue_seq
                model.instructions += committed
                model._fetch_seq += committed
                if committed == 0:
                    model.stall_cycles += 1
            else:
                committed = model.cycle(local)
            emitted = bool(outbox)
            if emitted:
                for request in outbox:
                    cs.outq.append(OutMsg(self.index, local, host_now + cost, request))
                    cost += per_mem_event_ns
                tel = self._tel
                if tel is not None and tel.enabled:
                    for request in outbox:
                        kind = request.kind
                        tel.on_core_request(
                            self.index, local, _KIND_NAMES[kind], request.line_addr
                        )
                        if kind is _LOCK_ACQ or kind is _BARRIER_ARR:
                            self._sync_wait_start = local
                outbox.clear()
            times[cidx] = local + 1
            cycles += 1
            # Fused constants: (cycle + slack check) in one add.  Exact —
            # every term is an integer-valued float, so the reassociation
            # relative to the historic (cycle, then check) order cannot
            # round.
            if committed:
                cost += cycle_plus_slack_ns + committed * per_instruction_ns
            else:
                cost += stall_plus_slack_ns

            if committed == 0 and not emitted and not model.finished:
                # The pipeline can only resume after an InQ delivery;
                # fast-forward stall cycles in bulk (charged per cycle).
                cost += self._skip_stalls(cs)
                break

        if cost <= 0.0:
            cost = slack_check_ns  # every step consumes host time
        if model.finished:
            result.cost_ns = cost
            result.blocked = False
            result.done = True
            return result
        max_local = limits[cidx]
        at_limit = max_local is not None and times[cidx] >= max_local
        blocked = at_limit or (model.waiting_sync and not inq)
        if blocked and at_limit:
            tel = self._tel
            if tel is not None and tel.enabled:
                tel.on_slack_stall(self.index, times[cidx], max_local)
            # Window edges synchronize with a heavyweight barrier under
            # cycle-by-cycle/quantum schemes and during the forced
            # cycle-by-cycle replay after a speculative rollback.
            if self._barrier_static:
                cost += self.cost.barrier_ns  # futex sleep at the barrier
            else:
                controller = self.sim.controller
                if controller is not None and controller.replaying:
                    cost += self.cost.barrier_ns
        result.cost_ns = cost
        result.blocked = blocked
        result.done = False
        return result

    def _drain_while_sync_blocked(self, cs: CoreState) -> float:
        """Apply all InQ entries while descheduled on a sync wait.

        A SYNC_GRANT warps the local clock forward to the grant timestamp
        (the blocked target core resumes exactly then); the skipped cycles
        are idle-time bookkeeping only — no host cost accrues for them
        because the host thread was asleep, not simulating.
        """
        cost = 0.0
        while cs.inq and cs.model.waiting_sync:
            msg = cs.inq.popleft()
            if msg.kind == InMsgKind.SYNC_GRANT:
                if msg.ts > cs.local_time:
                    san = self._san
                    if san is not None and san.enabled:
                        # The one legal way past max_local_time: record the
                        # warp so the slack-bound check allows it.
                        san.on_sync_warp(cs.core_id, msg.ts)
                    cs.model.skip_stall_cycles(msg.ts - cs.local_time)
                    cs.local_time = msg.ts
                tel = self._tel
                if tel is not None and tel.enabled:
                    start = self._sync_wait_start
                    if start is not None:
                        tel.on_sync_wait(self.index, start, msg.ts)
                        self._sync_wait_start = None
            self._apply(cs, msg)
            cost += self.cost.per_mem_event_ns
        return cost

    def _skip_stalls(self, cs: CoreState) -> float:
        """Bulk-advance known-stalled cycles; return the host cost."""
        times = cs._times
        cidx = cs._idx
        local = times[cidx]
        target = local + self.host.max_stall_batch
        max_local = cs._limits[cidx]
        if max_local is not None and max_local < target:
            target = max_local
        if cs.inq:
            due = cs.inq[0].ts
            if due < target:
                target = due
        skip = target - local
        if skip <= 0:
            return 0.0
        tel = self._tel
        if tel is not None and tel.enabled:
            tel.on_stall_skip(self.index, local, skip)
        cs.model.skip_stall_cycles(skip)
        times[cidx] = local + skip
        per_cycle = self.cost.stall_cycle_ns + self.cost.slack_check_ns
        return skip * per_cycle

    @staticmethod
    def _apply(cs: CoreState, msg: InMsg) -> None:
        model = cs.model
        if msg.kind == InMsgKind.FILL:
            model.complete_fill(msg.line_addr, msg.state)
        elif msg.kind == InMsgKind.SYNC_GRANT:
            model.complete_sync()
        elif msg.kind == InMsgKind.INVALIDATE:
            model.snoop_invalidate(msg.line_addr)
        elif msg.kind == InMsgKind.DOWNGRADE:
            model.snoop_downgrade(msg.line_addr)
        elif msg.kind == InMsgKind.IFILL:
            model.complete_ifill(msg.line_addr)
        else:  # pragma: no cover - guarded by InMsgKind
            raise SimulationError(f"unknown InQ message kind {msg.kind}")


class ManagerRunner:
    """Drives the simulation manager; never blocks (it polls for work).

    ``direct_cores`` restricts whose OutQs this manager consolidates
    itself; in hierarchical mode (paper section 2's "organized
    hierarchically" remedy for a bottlenecked manager) sub-managers
    forward the rest and absorb the per-event consolidation cost.
    """

    name = "manager"

    def __init__(self, sim, host: HostConfig, direct_cores=None) -> None:
        self.sim = sim
        self.host = host
        self.cost = host.cost
        self.direct_cores = direct_cores  # None = drain every core
        self._result = StepResult(0.0)
        self._tel = getattr(sim, "telemetry", None)

    def step(self, host_now: float) -> StepResult:
        sim = self.sim
        state = sim.state
        manager = state.manager
        controller = sim.controller
        if controller is None:
            outcome = manager.service(state, drain_cores=self.direct_cores)
        else:
            outcome = manager.service(
                state, drain_cores=self.direct_cores, **controller.overrides()
            )

        cost_model = self.cost
        cost = cost_model.manager_cycle_ns
        served = outcome.events_served
        if served:
            cost += served * cost_model.per_gq_event_ns
            if manager.detector.enabled:
                cost += served * cost_model.violation_tracking_ns
        if outcome.events_merged:
            cost += outcome.events_merged * cost_model.per_mem_event_ns
        if outcome.adjusted:
            cost += cost_model.adaptive_adjust_ns
        if outcome.idle:
            cost += self.host.manager_poll_ns
        else:
            tel = self._tel
            if tel is not None and tel.enabled:
                tel.on_manager_service(
                    host_now, cost, served, outcome.events_merged,
                    outcome.global_time,
                )
        result = self._result
        result.cost_ns = cost
        result.blocked = False
        result.done = False
        result.outcome = outcome
        return result


class SubManagerRunner:
    """One node of a hierarchical manager: consolidates a core group's
    OutQs into the top manager's GQ, absorbing the per-event handling
    cost that would otherwise serialize on the top manager."""

    def __init__(self, index: int, sim, host: HostConfig, core_ids) -> None:
        self.index = index
        self.sim = sim
        self.host = host
        self.cost = host.cost
        self.core_ids = list(core_ids)
        self._result = StepResult(0.0)

    @property
    def name(self) -> str:
        return f"submanager{self.index}"

    def step(self, host_now: float) -> StepResult:
        manager = self.sim.state.manager
        forwarded = manager._merge_outqs(self.sim.state, self.core_ids)
        cost = self.cost.manager_cycle_ns + forwarded * self.cost.per_mem_event_ns
        if forwarded == 0:
            cost += self.host.manager_poll_ns
        result = self._result
        result.cost_ns = cost
        result.blocked = False
        result.done = False
        result.outcome = None
        return result
