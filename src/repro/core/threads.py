"""Host-side simulation-thread runners.

A runner is the modeled equivalent of one POSIX thread of SlackSim: it
executes simulation work against the (snapshot-able) simulation state and
reports the modeled host-time cost of each scheduling step.  Runners hold
no simulation state of their own — after a speculative rollback replaces
the state root, the same runners continue against the restored state.
"""

from __future__ import annotations

from typing import Optional

from repro.config import HostConfig, HostCostModel
from repro.core.events import InMsg, InMsgKind, OutMsg
from repro.core.manager import ServiceOutcome
from repro.core.state import CoreState
from repro.errors import SimulationError


class StepResult:
    """Outcome of one runner scheduling step."""

    __slots__ = ("cost_ns", "blocked", "done", "outcome")

    def __init__(
        self,
        cost_ns: float,
        blocked: bool = False,
        done: bool = False,
        outcome: Optional[ServiceOutcome] = None,
    ) -> None:
        self.cost_ns = cost_ns
        self.blocked = blocked
        self.done = done
        self.outcome = outcome  # manager steps only


class CoreRunner:
    """Simulates one target core, driving its CoreState/CoreModel.

    Each step simulates up to ``max_batch_cycles`` target cycles (plus
    bulk-skipped stall cycles), delivering due InQ entries before every
    cycle and posting OutQ entries stamped with both target and host time.
    """

    name_prefix = "core"

    def __init__(self, index: int, sim, host: HostConfig) -> None:
        self.index = index
        self.sim = sim  # Simulation facade; state accessed via sim.state
        self.host = host
        self.cost = host.cost

    @property
    def name(self) -> str:
        return f"{self.name_prefix}{self.index}"

    def _core_state(self) -> CoreState:
        return self.sim.state.cores[self.index]

    def step(self, host_now: float) -> StepResult:
        cost_model: HostCostModel = self.cost
        cs = self._core_state()
        model = cs.model
        cost = 0.0
        cycles = 0
        batch = self.host.max_batch_cycles

        if model.finished:
            # The workload thread has exited; drain any coherence traffic
            # still addressed to this core so its L1 state stays coherent
            # with the rest of the machine.
            while cs.inq:
                self._apply(cs, cs.inq.popleft())
                cost += cost_model.per_mem_event_ns
            return StepResult(max(cost, cost_model.slack_check_ns), done=True)

        while cycles < batch:
            # Deliver every InQ entry whose timestamp has been reached (or
            # passed: the slack time-distortion case).
            while cs.inq and cs.inq[0].ts <= cs.local_time:
                self._apply(cs, cs.inq.popleft())
                cost += cost_model.per_mem_event_ns
            if model.waiting_sync:
                # A thread blocked on workload synchronization is
                # descheduled (MP_Simplesim executes sync inside the
                # simulator): its clock does not tick.  Drain the InQ —
                # the grant warps the local clock to the grant timestamp.
                cost += self._drain_while_sync_blocked(cs)
                if model.waiting_sync:
                    break  # wait for the manager's grant delivery
                continue
            if model.finished:
                break
            if cs.at_limit:
                break

            committed = model.cycle(cs.local_time)
            emitted = bool(model.outbox)
            if emitted:
                for request in model.outbox:
                    cs.outq.append(OutMsg(self.index, cs.local_time, host_now + cost, request))
                    cost += cost_model.per_mem_event_ns
                model.outbox.clear()
            cs.local_time += 1
            cycles += 1
            if committed:
                cost += cost_model.core_cycle_ns + committed * cost_model.per_instruction_ns
            else:
                cost += cost_model.stall_cycle_ns
            cost += cost_model.slack_check_ns

            if committed == 0 and not emitted and not model.finished:
                # The pipeline can only resume after an InQ delivery;
                # fast-forward stall cycles in bulk (charged per cycle).
                cost += self._skip_stalls(cs)
                break

        if cost <= 0.0:
            cost = cost_model.slack_check_ns  # every step consumes host time
        if model.finished:
            return StepResult(cost, done=True)
        blocked = cs.at_limit or (model.waiting_sync and not cs.inq)
        if blocked and cs.at_limit and self._barrier_mode():
            cost += cost_model.barrier_ns  # futex sleep at the barrier
        return StepResult(cost, blocked=blocked)

    def _barrier_mode(self) -> bool:
        """True when window edges synchronize with a heavyweight barrier:
        cycle-by-cycle/quantum schemes, and the forced cycle-by-cycle
        replay after a speculative rollback."""
        if self.sim.state.scheme.barrier_sync:
            return True
        controller = self.sim.controller
        return controller is not None and controller.replaying

    def _drain_while_sync_blocked(self, cs: CoreState) -> float:
        """Apply all InQ entries while descheduled on a sync wait.

        A SYNC_GRANT warps the local clock forward to the grant timestamp
        (the blocked target core resumes exactly then); the skipped cycles
        are idle-time bookkeeping only — no host cost accrues for them
        because the host thread was asleep, not simulating.
        """
        cost = 0.0
        while cs.inq and cs.model.waiting_sync:
            msg = cs.inq.popleft()
            if msg.kind == InMsgKind.SYNC_GRANT and msg.ts > cs.local_time:
                cs.model.skip_stall_cycles(msg.ts - cs.local_time)
                cs.local_time = msg.ts
            self._apply(cs, msg)
            cost += self.cost.per_mem_event_ns
        return cost

    def _skip_stalls(self, cs: CoreState) -> float:
        """Bulk-advance known-stalled cycles; return the host cost."""
        target = cs.local_time + self.host.max_stall_batch
        if cs.max_local_time is not None:
            target = min(target, cs.max_local_time)
        if cs.inq:
            target = min(target, cs.inq[0].ts)
        skip = target - cs.local_time
        if skip <= 0:
            return 0.0
        cs.model.skip_stall_cycles(skip)
        cs.local_time += skip
        per_cycle = self.cost.stall_cycle_ns + self.cost.slack_check_ns
        return skip * per_cycle

    @staticmethod
    def _apply(cs: CoreState, msg: InMsg) -> None:
        model = cs.model
        if msg.kind == InMsgKind.FILL:
            model.complete_fill(msg.line_addr, msg.state)
        elif msg.kind == InMsgKind.SYNC_GRANT:
            model.complete_sync()
        elif msg.kind == InMsgKind.INVALIDATE:
            model.snoop_invalidate(msg.line_addr)
        elif msg.kind == InMsgKind.DOWNGRADE:
            model.snoop_downgrade(msg.line_addr)
        elif msg.kind == InMsgKind.IFILL:
            model.complete_ifill(msg.line_addr)
        else:  # pragma: no cover - guarded by InMsgKind
            raise SimulationError(f"unknown InQ message kind {msg.kind}")


class ManagerRunner:
    """Drives the simulation manager; never blocks (it polls for work).

    ``direct_cores`` restricts whose OutQs this manager consolidates
    itself; in hierarchical mode (paper section 2's "organized
    hierarchically" remedy for a bottlenecked manager) sub-managers
    forward the rest and absorb the per-event consolidation cost.
    """

    name = "manager"

    def __init__(self, sim, host: HostConfig, direct_cores=None) -> None:
        self.sim = sim
        self.host = host
        self.cost = host.cost
        self.direct_cores = direct_cores  # None = drain every core

    def step(self, host_now: float) -> StepResult:
        sim = self.sim
        controller = sim.controller
        overrides = controller.overrides() if controller is not None else {}
        detection = sim.state.manager.detector.enabled

        outcome = sim.state.manager.service(
            sim.state, drain_cores=self.direct_cores, **overrides
        )

        cost = self.cost.manager_cycle_ns
        cost += outcome.events_served * self.cost.per_gq_event_ns
        cost += outcome.events_merged * self.cost.per_mem_event_ns
        if detection:
            cost += outcome.events_served * self.cost.violation_tracking_ns
        if outcome.adjusted:
            cost += self.cost.adaptive_adjust_ns
        if outcome.idle:
            cost += self.host.manager_poll_ns
        return StepResult(cost, outcome=outcome)


class SubManagerRunner:
    """One node of a hierarchical manager: consolidates a core group's
    OutQs into the top manager's GQ, absorbing the per-event handling
    cost that would otherwise serialize on the top manager."""

    def __init__(self, index: int, sim, host: HostConfig, core_ids) -> None:
        self.index = index
        self.sim = sim
        self.host = host
        self.cost = host.cost
        self.core_ids = list(core_ids)

    @property
    def name(self) -> str:
        return f"submanager{self.index}"

    def step(self, host_now: float) -> StepResult:
        manager = self.sim.state.manager
        forwarded = manager._merge_outqs(self.sim.state, self.core_ids)
        cost = self.cost.manager_cycle_ns + forwarded * self.cost.per_mem_event_ns
        if forwarded == 0:
            cost += self.host.manager_poll_ns
        return StepResult(cost)
