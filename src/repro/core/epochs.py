"""Machine-state wire codec and epoch cuts for time-parallel runs.

One long simulation is split into N *epochs* at deterministic cut points
along its trajectory; each epoch can then be executed speculatively in a
separate worker process starting from a *predicted* machine state, and the
chain is stitched back together by comparing each epoch's actual end state
against its successor's predicted start state (``repro.harness.timepar``
drives the protocol; this module provides the mechanisms).

Three mechanisms live here:

- :func:`make_stop_predicate` — the epoch *cut rule*, evaluated by the
  scheduler at the end of every manager step (the one program point where
  every loop invariant holds).  Plain schemes cut at the first manager
  step whose global time reaches the boundary; checkpointing runs cut
  only when a checkpoint at/past the boundary has just been taken and no
  replay is in flight, so the cut always lands on a consistent
  checkpoint.  Cuts never mutate clocks or state: they merely partition
  the deterministic trajectory.

- :func:`encode_machine` — a **versioned, pickle-free wire codec** for
  the full machine state (mirroring the ``RunSpec`` codec discipline of
  ``repro.service.protocol``): the :class:`~repro.core.state.SimulationState`
  object graph is rendered as tagged plain data against a **class
  allowlist**, with memo references preserving aliasing (the flat clock
  banks shared by root and cores, the ``_models`` view, shared configs),
  floats via ``float.hex`` (exact to the last ulp), and dict entries in
  insertion order (which is semantic: the manager serves maps and queues
  in that order).  Program structure — statement trees whose ``Emit`` /
  ``If`` / ``Loop`` nodes hold *callables* that cannot cross a process
  boundary — is never serialized: both sides derive the identical
  structure from the run configuration, so statements and their body
  tuples are encoded as **anchor references** into a deterministic walk
  of the fresh simulation's programs.

- :func:`install_machine` — the inverse: decode into a freshly
  constructed simulation + scheduler pair, rebuild the ready heap from
  exact keys, and (for checkpointing runs) re-arm the controller's
  rollback snapshot by re-capturing the installed state.

The codec deliberately excludes host-side caches that the engine rebuilds
on demand (copy-on-write shadows, the status-map undo journal, the
manager's reused outcome scratch object): resetting them fresh on decode
keeps the wire bytes — and therefore the epoch digests — a pure function
of simulation-visible state.

Wire bytes themselves (canonical JSON + SHA-256 digest) are produced by
``repro.harness.timepar``; this module deals only in plain data, keeping
``repro.core`` free of serialization imports.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import (
    AdaptiveConfig,
    AdaptiveQuantumConfig,
    BusConfig,
    CacheConfig,
    CheckpointConfig,
    CoreConfig,
    L2Config,
    MemoryConfig,
    P2PConfig,
    QuantumConfig,
    SlackConfig,
    SpeculativeConfig,
    TargetConfig,
)
from repro.core import snapshot as cow
from repro.core.checkpoint import Snapshot
from repro.core.events import InMsg, InMsgKind, OutMsg
from repro.core.hostmodel import ThreadState
from repro.core.manager import ManagerState, ServiceOutcome
from repro.core.schemes.adaptive import AdaptiveSlackPolicy
from repro.core.schemes.adaptive_quantum import AdaptiveQuantumPolicy
from repro.core.schemes.fixed import FixedSlackPolicy, QuantumPolicy
from repro.core.schemes.p2p import P2PPolicy
from repro.core.speculative import IntervalRecord
from repro.core.state import CoreState, SimulationState
from repro.core.violations import (
    MapMonitorTable,
    TimestampMonitor,
    ViolationDetector,
    ViolationRecord,
)
from repro.cpu.core import CoreModel, CoreRequest, RequestKind
from repro.errors import EpochError
from repro.isa.operations import Op, OpKind
from repro.isa.program import If, Loop, ProgramContext, ProgramInterpreter, Stmt, _Frame
from repro.memory.address import AddressMapper
from repro.memory.bus import SnoopBus
from repro.memory.cache import CacheArray
from repro.memory.cache_map import CacheStatusMap
from repro.memory.dram import DramConfig, DramModel
from repro.memory.l1 import L1Cache
from repro.memory.l2 import L2Cache
from repro.memory.mesi import BusOpKind, MesiState
from repro.memory.mshr import MshrEntry, MshrFile
from repro.sync.primitives import (
    BarrierTable,
    LockTable,
    SyncTimingConfig,
    _BarrierState,
    _LockState,
)
from repro.util import SplitMix64, XorShift64

__all__ = [
    "MACHINE_WIRE_VERSION",
    "encode_machine",
    "install_machine",
    "machine_anchors",
    "make_stop_predicate",
]

#: Bumped whenever the wire layout, the class allowlist, or the skip-field
#: table changes shape.  Decoding a mismatched version raises
#: :class:`~repro.errors.EpochError` (never a silent misparse).
MACHINE_WIRE_VERSION = 1

#: Every class the state-graph codec may encode/reconstruct.  Anything
#: outside this allowlist raises a structured error naming the class —
#: new state classes must be added here *deliberately* (and the wire
#: version bumped if their shape matters).
_REGISTRY: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        SimulationState,
        CoreState,
        ManagerState,
        CoreModel,
        CoreRequest,
        ProgramInterpreter,
        ProgramContext,
        _Frame,
        Op,
        L1Cache,
        MshrFile,
        MshrEntry,
        CacheArray,
        AddressMapper,
        CacheStatusMap,
        SnoopBus,
        L2Cache,
        DramModel,
        LockTable,
        _LockState,
        BarrierTable,
        _BarrierState,
        ViolationDetector,
        TimestampMonitor,
        MapMonitorTable,
        ViolationRecord,
        OutMsg,
        InMsg,
        FixedSlackPolicy,
        QuantumPolicy,
        AdaptiveSlackPolicy,
        AdaptiveQuantumPolicy,
        P2PPolicy,
        SplitMix64,
        XorShift64,
        # Immutable configuration (aliased throughout the graph; encoded
        # by reference via the memo so aliasing survives the round trip).
        TargetConfig,
        CoreConfig,
        CacheConfig,
        BusConfig,
        L2Config,
        MemoryConfig,
        DramConfig,
        SyncTimingConfig,
        SlackConfig,
        QuantumConfig,
        AdaptiveConfig,
        AdaptiveQuantumConfig,
        P2PConfig,
        CheckpointConfig,
        SpeculativeConfig,
    )
}

#: Enum classes the codec may carry (tagged by class name + value).
_ENUMS: Dict[str, type] = {
    cls.__name__: cls
    for cls in (MesiState, BusOpKind, InMsgKind, RequestKind, OpKind, ThreadState)
}

#: Per-class fields excluded from the wire: host-side rebuild-on-demand
#: caches whose content is history-dependent but simulation-invisible.
#: They are reset fresh by the decoder (see ``_reset_skipped``), which
#: keeps epoch digests a pure function of simulation-visible state.
_SKIP_FIELDS: Dict[type, frozenset] = {
    CacheArray: frozenset({"_dirty", "_shadow", "_snap_epoch"}),
    CacheStatusMap: frozenset({"_journal"}),
    ManagerState: frozenset({"_outcome"}),
}

#: Observation-only session references (telemetry / sanitizer probes) are
#: never serialized regardless of the owning class; the worker re-attaches
#: its own sessions (or none).
_GLOBAL_SKIP = frozenset({"telemetry", "sanitizer"})

#: The state-field manifest: the deliberate, reviewed record of every
#: declared field (dataclass fields, ``__slots__``, ``self.x``
#: assignments) of each allowlisted class.  The encoder walks
#: ``__slots__``/``__dict__`` generically, so the *code* cannot drift —
#: this table is the second, independently maintained description that
#: ``repro analyze`` (RPR102) statically diffs against the real class
#: definitions.  Growing a state class without recording the field here
#: (and deciding: wire field, ``_SKIP_FIELDS`` entry, or
#: :data:`MACHINE_WIRE_VERSION` bump) fails CI.
STATE_FIELDS: Dict[str, Tuple[str, ...]] = {
    "SimulationState": ("_models", "cores", "local_times", "manager", "max_local_times", "scheme", "target"),
    "CoreState": ("_idx", "_limits", "_times", "core_id", "inq", "model", "outq"),
    "ManagerState": ("_batch_grant_min", "_grant_floor", "_limits_stale", "_outcome", "_serving_conservative", "barriers", "bus", "c2c_latency", "cache_map", "detector", "events_served", "global_time", "gq", "l2", "locks"),
    "CoreModel": ("_code_base_line", "_code_lines", "_compute_rate", "_compute_remaining", "_current_op", "_fetch_line", "_fetch_seq", "_icache", "_ifetch_pending", "_instrs_per_line", "_issue_seq", "_issue_width", "_page_shift", "_pending_loads", "_window_size", "config", "core_id", "cycles", "finished", "ifetch_stall_cycles", "instructions", "l1", "outbox", "pages_touched", "program", "stall_cycles", "sync_stall_cycles", "waiting_sync"),
    "CoreRequest": ("bus_op", "kind", "line_addr", "participants", "sync_id"),
    "ProgramInterpreter": ("_buffer", "_ended", "_frames", "_program", "ctx"),
    "ProgramContext": ("rng", "tid", "vars"),
    "_Frame": ("idx", "remaining", "stmts", "trip", "var"),
    "Op": ("arg1", "arg2", "kind"),
    "L1Cache": ("_line_bits", "array", "core_id", "hit_latency", "last_bus_op", "load_misses", "loads", "mshrs", "snoop_downgrades", "snoop_invalidations", "store_misses", "stores", "upgrades", "writebacks"),
    "MshrFile": ("_entries", "allocations", "capacity", "full_stalls", "merges"),
    "MshrEntry": ("issue_time", "kind", "line_addr", "merged_rob_ids"),
    "CacheArray": ("_assoc", "_clock", "_dirty", "_index", "_lru", "_set_bits", "_set_mask", "_shadow", "_snap_epoch", "_state", "_tag", "config", "evictions", "hits", "mapper", "misses"),
    "AddressMapper": ("_set_mask", "line_bits", "num_sets", "set_bits"),
    "CacheStatusMap": ("_entries", "_journal", "cache_to_cache", "gets_served", "getx_served", "upgr_served", "writebacks"),
    "SnoopBus": ("_last_request_ts", "config", "request_conflict_cycles", "request_free_at", "requests", "response_conflict_cycles", "response_free_at", "responses", "stale_grants"),
    "L2Cache": ("_bank_free_at", "accesses", "array", "bank_conflict_cycles", "config", "dram", "misses", "writebacks_received"),
    "DramModel": ("_bank_free_at", "_lines_per_row", "_open_row", "accesses", "bank_conflict_cycles", "config", "row_hits", "row_misses"),
    "LockTable": ("_locks", "acquires", "contended_acquires", "timing"),
    "_LockState": ("holder", "waiters"),
    "BarrierTable": ("_barriers", "episodes", "timing"),
    "_BarrierState": ("arrived",),
    "ViolationDetector": ("_bus_monitor", "_map_monitors", "_pending", "counts", "enabled", "last_violation", "window_counts"),
    "TimestampMonitor": ("last_ts",),
    "MapMonitorTable": ("_monitors",),
    "ViolationRecord": ("core_id", "global_time", "ts", "vtype"),
    "OutMsg": ("core_id", "host_time", "request", "ts"),
    "InMsg": ("kind", "line_addr", "state", "ts"),
    "FixedSlackPolicy": ("_window", "barrier_sync", "config", "conservative_service"),
    "QuantumPolicy": ("config",),
    "AdaptiveSlackPolicy": ("_bound_integral", "_integral_from", "_last_control_time", "adjustments", "bound", "config", "decreases", "history", "increases", "rate_estimate"),
    "AdaptiveQuantumPolicy": ("_last_control_time", "_last_events", "adjustments", "config", "history", "quantum"),
    "P2PPolicy": ("_active", "_locals", "_next_check", "_peer", "checks", "config", "num_cores", "rng", "waits"),
    "SplitMix64": ("state",),
    "XorShift64": ("state",),
    "TargetConfig": ("bus", "core", "l1d", "l1i", "l2", "memory", "num_cores"),
    "CoreConfig": ("code_footprint", "fdiv_latency", "fp_latency", "instruction_bytes", "int_alu_latency", "issue_width", "model_icache", "mul_latency", "num_mshrs", "window_size"),
    "CacheConfig": ("associativity", "hit_latency", "line_size", "size"),
    "BusConfig": ("arbitration_latency", "request_cycles", "response_cycles"),
    "L2Config": ("cache", "dram", "miss_latency", "num_banks"),
    "MemoryConfig": ("page_size",),
    "DramConfig": ("bank_busy_cycles", "num_banks", "row_bytes", "row_hit_latency", "row_miss_latency"),
    "SyncTimingConfig": ("barrier_latency", "lock_handoff", "lock_latency"),
    "SlackConfig": ("bound",),
    "QuantumConfig": ("quantum",),
    "AdaptiveConfig": ("adjust_period", "band", "decrease_factor", "increase_step", "initial_bound", "max_bound", "min_bound", "target_rate"),
    "AdaptiveQuantumConfig": ("adjust_period", "high_traffic", "initial_quantum", "low_traffic", "max_quantum", "min_quantum"),
    "P2PConfig": ("max_lead", "period"),
    "CheckpointConfig": ("interval",),
    "SpeculativeConfig": ("base", "checkpoint", "tracked"),
}


# --------------------------------------------------------------------- #
# Epoch cut rule
# --------------------------------------------------------------------- #


def make_stop_predicate(sim: Any, boundary: int) -> Callable[[ServiceOutcome], bool]:
    """Build the ``Scheduler.run(stop_when=...)`` predicate for one cut.

    Plain schemes cut at the first manager step whose global time has
    reached ``boundary``.  Checkpointing runs (a
    :class:`~repro.core.speculative.CheckpointController` is attached) cut
    only at the end of the manager step in which a checkpoint at or past
    ``boundary`` was taken, outside any replay window — so the captured
    state always coincides with the controller's own rollback snapshot
    and a mid-replay trajectory is never split.
    """
    controller = sim.controller
    if controller is not None:

        def stop_at_checkpoint(outcome: ServiceOutcome) -> bool:
            snap = controller.snapshot
            return (
                not controller.replaying
                and snap is not None
                and snap.boundary >= boundary
            )

        return stop_at_checkpoint

    def stop_at_global_time(outcome: ServiceOutcome) -> bool:
        return outcome.global_time >= boundary

    return stop_at_global_time


# --------------------------------------------------------------------- #
# Program-structure anchors
# --------------------------------------------------------------------- #


def machine_anchors(state: SimulationState) -> Tuple[Dict[int, int], List[Any]]:
    """Deterministic walk of the state's program structure.

    Returns ``(by_id, objects)``: the id->index map the encoder consults
    and the index->object list the decoder resolves against.  Both sides
    construct their simulation from the same configuration, so the walks
    enumerate structurally identical objects in identical order; sharing
    (a statement reused across threads, the ``()`` empty-body singleton)
    is first-wins on both sides and therefore symmetric.
    """
    by_id: Dict[int, int] = {}
    objects: List[Any] = []

    def note(obj: Any) -> bool:
        if id(obj) in by_id:  # repro: noqa[RPR003] walk-local dedup; indices, not ids, reach the wire
            return False
        by_id[id(obj)] = len(objects)  # repro: noqa[RPR003] walk-local dedup; indices, not ids, reach the wire
        objects.append(obj)
        return True

    def walk(stmts: Tuple[Stmt, ...]) -> None:
        if not note(stmts):
            return
        for stmt in stmts:
            if not note(stmt):
                continue
            if isinstance(stmt, Loop):
                walk(stmt.body)
            elif isinstance(stmt, If):
                walk(stmt.then_body)
                walk(stmt.else_body)

    for cs in state.cores:
        walk(cs.model.program._program)
    return by_id, objects


def _anchor_signature(objects: List[Any]) -> List[str]:
    """Structural shape of the anchor walk, compared on install.

    Two workloads can anchor the *same number* of objects while differing
    in shape (e.g. a scale change that only alters integer loop trip
    counts), so the guard records per-object structure: body lengths and
    literal trip counts (callable trip counts reduce to ``?`` — their
    identity is covered by the surrounding structure and the run
    configuration).
    """
    sig: List[str] = []
    for obj in objects:
        if type(obj) is tuple:
            sig.append(f"t{len(obj)}")
        elif isinstance(obj, Loop):
            count = obj.count
            sig.append(f"L{count}" if isinstance(count, int) else "L?")
        elif isinstance(obj, If):
            sig.append("I")
        else:
            sig.append(type(obj).__name__[:1])
    return sig


# --------------------------------------------------------------------- #
# State-graph codec
# --------------------------------------------------------------------- #


def _object_fields(obj: Any) -> List[Tuple[str, Any]]:
    """Enumerate an instance's live fields in deterministic order.

    ``__slots__`` names in MRO order first (covering slotted classes),
    then ``__dict__`` keys in insertion order (deterministic because the
    construction path is).  Skip-table fields and unset slots are
    omitted.
    """
    cls = type(obj)
    names: List[str] = []
    seen: set = set()
    for klass in cls.__mro__:
        slots = vars(klass).get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name in ("__dict__", "__weakref__") or name in seen:
                continue
            seen.add(name)
            names.append(name)
    inst = getattr(obj, "__dict__", None)
    if inst is not None:
        for name in inst:
            if name not in seen:
                seen.add(name)
                names.append(name)
    skip = _SKIP_FIELDS.get(cls, frozenset())
    fields: List[Tuple[str, Any]] = []
    for name in names:
        if name in _GLOBAL_SKIP or name in skip:
            continue
        try:
            fields.append((name, getattr(obj, name)))
        except AttributeError:
            continue  # unset slot
    return fields


class _Encoder:
    """Object graph -> tagged plain data (JSON-able)."""

    def __init__(self, anchors: Dict[int, int]) -> None:
        self._anchors = anchors
        self._memo: Dict[int, int] = {}
        self._alive: List[Any] = []  # keep ids stable for the walk
        self._next = 0

    def _assign(self, obj: Any) -> int:
        index = self._next
        self._next = index + 1
        self._memo[id(obj)] = index  # repro: noqa[RPR003] encode-pass memo; only the index is serialized
        self._alive.append(obj)
        return index

    def encode(self, obj: Any) -> Any:
        if obj is None:
            return None
        t = type(obj)
        if t is bool or t is int or t is str:
            return obj
        if t is float:
            return ["f", obj.hex()]
        oid = id(obj)  # repro: noqa[RPR003] memo/anchor key for this pass; never serialized
        anchor = self._anchors.get(oid)
        if anchor is not None:
            return ["a", anchor]
        ref = self._memo.get(oid)
        if ref is not None:
            return ["r", ref]
        if t is tuple:
            return ["t", [self.encode(v) for v in obj]]
        if t is list:
            index = self._assign(obj)
            return ["l", index, [self.encode(v) for v in obj]]
        if t is dict:
            index = self._assign(obj)
            return ["d", index, [[self.encode(k), self.encode(v)] for k, v in obj.items()]]
        if t is set or t is frozenset:
            index = self._assign(obj)
            try:
                items = sorted(obj)
            except TypeError as exc:
                raise EpochError(
                    f"cannot canonicalize unordered {t.__name__} for the wire: {exc}"
                ) from None
            return ["s" if t is set else "fs", index, [self.encode(v) for v in items]]
        if t is deque:
            index = self._assign(obj)
            return ["q", index, [self.encode(v) for v in obj]]
        if isinstance(obj, Enum):
            name = type(obj).__name__
            if name not in _ENUMS:
                raise EpochError(f"enum class {name!r} is not wire-allowlisted")
            return ["e", name, obj.value]
        if isinstance(obj, Stmt):
            raise EpochError(
                f"statement object {t.__name__} reachable from state but not "
                "anchored in any core's program (corrupt interpreter frame?)"
            )
        name = t.__name__
        if name not in _REGISTRY or _REGISTRY[name] is not t:
            raise EpochError(
                f"class {t.__module__}.{name} is not wire-allowlisted; "
                "extend repro.core.epochs._REGISTRY deliberately"
            )
        index = self._assign(obj)
        record = ["o", name, index, [[n, self.encode(v)] for n, v in _object_fields(obj)]]
        return record


class _Decoder:
    """Tagged plain data -> object graph (against a fresh simulation)."""

    def __init__(self, anchor_objects: List[Any]) -> None:
        self._anchors = anchor_objects
        self._memo: Dict[int, Any] = {}

    def decode(self, data: Any) -> Any:
        if data is None or isinstance(data, (bool, int, str)):
            return data
        if not isinstance(data, list) or not data:
            raise EpochError(f"malformed wire node: {data!r}")
        tag = data[0]
        if tag == "f":
            return float.fromhex(data[1])
        if tag == "a":
            index = data[1]
            if not isinstance(index, int) or not 0 <= index < len(self._anchors):
                raise EpochError(f"anchor index {index!r} out of range")
            return self._anchors[index]
        if tag == "r":
            try:
                return self._memo[data[1]]
            except KeyError:
                raise EpochError(f"dangling memo reference {data[1]!r}") from None
        if tag == "t":
            return tuple(self.decode(v) for v in data[1])
        if tag == "l":
            out: List[Any] = []
            self._memo[data[1]] = out
            out.extend(self.decode(v) for v in data[2])
            return out
        if tag == "d":
            mapping: Dict[Any, Any] = {}
            self._memo[data[1]] = mapping
            for pair in data[2]:
                mapping[self.decode(pair[0])] = self.decode(pair[1])
            return mapping
        if tag == "s":
            values: set = set()
            self._memo[data[1]] = values
            values.update(self.decode(v) for v in data[2])
            return values
        if tag == "fs":
            frozen = frozenset(self.decode(v) for v in data[2])
            self._memo[data[1]] = frozen
            return frozen
        if tag == "q":
            dq: deque = deque()
            self._memo[data[1]] = dq
            dq.extend(self.decode(v) for v in data[2])
            return dq
        if tag == "e":
            enum_cls = _ENUMS.get(data[1])
            if enum_cls is None:
                raise EpochError(f"enum class {data[1]!r} is not wire-allowlisted")
            try:
                return enum_cls(data[2])
            except ValueError as exc:
                raise EpochError(str(exc)) from None
        if tag == "o":
            name = data[1]
            cls = _REGISTRY.get(name)
            if cls is None:
                raise EpochError(
                    f"class {name!r} is not wire-allowlisted on this side "
                    f"(wire version {MACHINE_WIRE_VERSION} skew?)"
                )
            obj = object.__new__(cls)
            self._memo[data[2]] = obj
            for entry in data[3]:
                object.__setattr__(obj, entry[0], self.decode(entry[1]))
            _reset_skipped(obj)
            return obj
        raise EpochError(f"unknown wire tag {tag!r}")


def _reset_skipped(obj: Any) -> None:
    """Re-initialize the skip-table fields the wire deliberately omits."""
    t = type(obj)
    if t is CacheArray:
        obj._dirty = set()
        obj._shadow = None
        obj._snap_epoch = 0
    elif t is CacheStatusMap:
        obj._journal = {}
    elif t is ManagerState:
        obj._outcome = ServiceOutcome(0, False, [], 0, True)


# --------------------------------------------------------------------- #
# Host-side record (hand-rolled: small, flat, no object graph)
# --------------------------------------------------------------------- #


def _encode_host(scheduler: Any) -> Dict[str, Any]:
    stats = scheduler.stats
    contexts: List[List[Any]] = []
    for ctx in scheduler.contexts:
        last = ctx.last_thread
        contexts.append([ctx.clock.hex(), None if last is None else last.pos])
    threads: List[List[Any]] = []
    for thread in scheduler.threads:
        threads.append(
            [
                int(thread.state),
                thread.ready_time.hex(),
                thread.steps,
                thread.rng.state,
                thread.context.index,
            ]
        )
    return {
        "contexts": contexts,
        "threads": threads,
        "parked": [thread.pos for thread in scheduler._parked],
        "parked_dirty": scheduler._parked_dirty,
        "stats": {
            "manager_steps": stats.manager_steps,
            "core_steps": stats.core_steps,
            "wakeups": stats.wakeups,
            "context_busy_ns": [v.hex() for v in stats.context_busy_ns],
            "manager_busy_ns": stats.manager_busy_ns.hex(),
            "submanager_busy_ns": stats.submanager_busy_ns.hex(),
            "checkpoints": stats.checkpoints,
            "checkpoint_cost_ns": stats.checkpoint_cost_ns.hex(),
            "rollbacks": stats.rollbacks,
            "rollback_cost_ns": stats.rollback_cost_ns.hex(),
            "wasted_target_cycles": stats.wasted_target_cycles,
            "replay_target_cycles": stats.replay_target_cycles,
            "violations_observed": stats.violations_observed,
        },
    }


def _install_host(scheduler: Any, rec: Dict[str, Any]) -> None:
    contexts = scheduler.contexts
    threads = scheduler.threads
    if len(rec["contexts"]) != len(contexts) or len(rec["threads"]) != len(threads):
        raise EpochError(
            "host record shape mismatch: the receiving scheduler was built "
            "from a different configuration than the captured one"
        )
    for thread, trec in zip(threads, rec["threads"]):
        thread.state = ThreadState(trec[0])
        thread.ready_time = float.fromhex(trec[1])
        thread.steps = trec[2]
        thread.rng.state = trec[3]
        target_ctx = contexts[trec[4]]
        if thread.context is not target_ctx:
            # Only the (migrating) manager normally moves, but the record
            # is authoritative for every thread.
            thread.context.threads.remove(thread)
            target_ctx.threads.append(thread)
            thread.context = target_ctx
        thread.queued = False
    for ctx, crec in zip(contexts, rec["contexts"]):
        ctx.clock = float.fromhex(crec[0])
        ctx.last_thread = None if crec[1] is None else threads[crec[1]]
    # Rebuild the ready heap from exact keys: every READY non-manager
    # thread is queued (pos order); lazy top validation makes the pop
    # order identical to the uncut run's.
    scheduler._heap.clear()
    for thread in threads:
        if thread is not scheduler.manager_thread and thread.state == ThreadState.READY:
            scheduler._enqueue(thread)
    scheduler._parked = [threads[pos] for pos in rec["parked"]]
    scheduler._parked_dirty = bool(rec["parked_dirty"])
    scheduler._migrate_min = None  # recompute-on-demand cache

    stats = scheduler.stats
    srec = rec["stats"]
    stats.manager_steps = srec["manager_steps"]
    stats.core_steps = srec["core_steps"]
    stats.wakeups = srec["wakeups"]
    stats.context_busy_ns = [float.fromhex(v) for v in srec["context_busy_ns"]]
    stats.manager_busy_ns = float.fromhex(srec["manager_busy_ns"])
    stats.submanager_busy_ns = float.fromhex(srec["submanager_busy_ns"])
    stats.checkpoints = srec["checkpoints"]
    stats.checkpoint_cost_ns = float.fromhex(srec["checkpoint_cost_ns"])
    stats.rollbacks = srec["rollbacks"]
    stats.rollback_cost_ns = float.fromhex(srec["rollback_cost_ns"])
    stats.wasted_target_cycles = srec["wasted_target_cycles"]
    stats.replay_target_cycles = srec["replay_target_cycles"]
    stats.violations_observed = srec["violations_observed"]


# --------------------------------------------------------------------- #
# Controller record
# --------------------------------------------------------------------- #


def _interval_data(record: IntervalRecord) -> List[Any]:
    return [
        record.index,
        record.start,
        record.end,
        record.violations,
        record.first_offset,
        record.rolled_back,
    ]


def _interval_from(data: List[Any]) -> IntervalRecord:
    record = IntervalRecord(data[0], data[1], data[2])
    record.violations = data[3]
    record.first_offset = data[4]
    record.rolled_back = data[5]
    return record


def _encode_controller(controller: Any) -> Dict[str, Any]:
    if controller.replaying:
        raise EpochError(
            "cannot capture an epoch inside a rollback replay window; the "
            "cut rule only fires outside replays"
        )
    snap = controller.snapshot
    if snap is None:
        raise EpochError("controller has no checkpoint yet; cut fired too early")
    return {
        "next_boundary": controller.next_boundary,
        "records": [_interval_data(r) for r in controller.records],
        "current": _interval_data(controller._current),
        "snapshot": [snap.boundary, snap.host_time.hex(), snap.pages],
    }


def _install_controller(
    controller: Any, rec: Dict[str, Any], state: SimulationState
) -> None:
    controller.next_boundary = rec["next_boundary"]
    controller.replaying = False
    controller.records = [_interval_from(r) for r in rec["records"]]
    controller._current = _interval_from(rec["current"])
    boundary, host_time_hex, pages = rec["snapshot"]
    # The cut rule guarantees the captured state *is* the state at the
    # controller's latest checkpoint, so re-capturing the installed state
    # reproduces the rollback target exactly (fresh COW generation, same
    # content); boundary/host_time/pages carry over from the capture.
    capture = cow.take(state)
    controller.snapshot = Snapshot(capture, boundary, float.fromhex(host_time_hex), pages)


# --------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------- #


def encode_machine(sim: Any, scheduler: Any) -> Dict[str, Any]:
    """Capture the full machine (simulation root + host scheduler state +
    controller) as versioned plain data.

    Must be called at an epoch cut (the end of a manager step); the
    result round-trips through :func:`install_machine` bit-for-bit.
    """
    state = sim.state
    by_id, objects = machine_anchors(state)
    encoder = _Encoder(by_id)
    root = encoder.encode(state)
    controller = sim.controller
    return {
        "v": MACHINE_WIRE_VERSION,
        "anchors": _anchor_signature(objects),
        "root": root,
        "host": _encode_host(scheduler),
        "ctrl": None if controller is None else _encode_controller(controller),
    }


def install_machine(sim: Any, scheduler: Any, payload: Dict[str, Any]) -> None:
    """Install a captured machine into a freshly built sim + scheduler.

    ``sim``/``scheduler`` must have been constructed from the *same*
    configuration as the captured run and must not have executed yet
    (beyond construction).  After installation, ``scheduler.run``
    continues the captured trajectory bit-for-bit.
    """
    if not isinstance(payload, dict):
        raise EpochError(f"machine payload must be a mapping, got {type(payload).__name__}")
    version = payload.get("v")
    if version != MACHINE_WIRE_VERSION:
        raise EpochError(
            f"unsupported machine wire version {version!r} "
            f"(this side speaks {MACHINE_WIRE_VERSION})"
        )
    _, objects = machine_anchors(sim.state)
    signature = _anchor_signature(objects)
    if payload.get("anchors") != signature:
        raise EpochError(
            "program-structure mismatch: the capture's anchor walk does not "
            "match the receiver's — different workload, thread count, or "
            "scale?"
        )
    decoder = _Decoder(objects)
    state = decoder.decode(payload["root"])
    if not isinstance(state, SimulationState):
        raise EpochError("machine root did not decode to a SimulationState")
    sim.state = state
    _install_host(scheduler, payload["host"])
    ctrl_rec = payload.get("ctrl")
    controller = sim.controller
    if (ctrl_rec is None) != (controller is None):
        raise EpochError(
            "checkpoint-controller mismatch between capture and receiver "
            "(different scheme/checkpoint configuration)"
        )
    if controller is not None and ctrl_rec is not None:
        _install_controller(controller, ctrl_rec, state)
