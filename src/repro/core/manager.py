"""The simulation manager thread (paper section 2, Figure 1).

The manager simulates the on-chip lower-level hierarchy — the snooping bus,
the shared L2, and the global cache status map — and orchestrates the
simulation: it consolidates every core thread's OutQ into the global queue
(GQ), serves GQ events, maintains the global time, and sets each core
thread's max local time according to the active slack scheme.

Event service order is the crux of the whole paradigm:

- *slack schemes* serve events in **host arrival order** while computing
  latencies from **target timestamps** — fast, but the order divergence is
  exactly what the violation monitors count (section 3);
- *cycle-by-cycle and quantum* runs serve **conservatively**: only events
  whose timestamp has been passed by the global time, sorted by timestamp
  (core id breaking ties) — provably violation-free, at the cost of
  per-cycle (or per-quantum) barrier synchronization.
"""

from __future__ import annotations

from operator import attrgetter
from typing import List, Optional, Tuple

from repro.config import TargetConfig
from repro.core.events import InMsg, InMsgKind, OutMsg
from repro.core.state import CoreState, SimulationState
from repro.core.violations import ViolationDetector, ViolationRecord
from repro.cpu.core import RequestKind
from repro.errors import SimulationError
from repro.memory.bus import SnoopBus
from repro.memory.cache_map import CacheStatusMap
from repro.memory.l2 import L2Cache
from repro.memory.mesi import BusOpKind, MesiState, fill_state_for
from repro.sync.primitives import BarrierTable, LockTable, SyncTimingConfig

# C-speed sort keys for the two GQ disciplines (host arrival order for
# consolidation, timestamp order for service batches).
_ARRIVAL_ORDER = attrgetter("host_time", "core_id")
_TIMESTAMP_ORDER = attrgetter("ts", "core_id", "host_time")

#: Telemetry labels per request kind (enum .name lookups are too slow for
#: the per-event probe).
_KIND_NAMES = {kind: kind.name.lower() for kind in RequestKind}


# repro: hot-path
class ServiceOutcome:
    """What one manager service step did (drives host-cost charging)."""

    __slots__ = (
        "events_served",
        "events_merged",
        "adjusted",
        "violations",
        "global_time",
        "idle",
        "maybe_wake",
    )

    def __init__(
        self,
        events_served: int,
        adjusted: bool,
        violations: List[ViolationRecord],
        global_time: int,
        idle: bool,
        events_merged: int = 0,
        maybe_wake: bool = True,
    ) -> None:
        self.events_served = events_served
        self.events_merged = events_merged
        self.adjusted = adjusted
        self.violations = violations
        self.global_time = global_time
        self.idle = idle
        # False only when the step provably changed nothing a parked core
        # thread waits on (no event delivered, pacing limits untouched),
        # letting the scheduler skip its wake scan.
        self.maybe_wake = maybe_wake


class ManagerState:
    """All manager-owned simulation state plus the service logic."""

    #: Optional TelemetrySession (instance attr set by Simulation when a
    #: session is attached; shared across snapshots, never deep-copied).
    telemetry = None
    #: Optional SlackSanitizer (instance attr set by Simulation under
    #: ``--sanitize``); same sharing contract as the telemetry session.
    sanitizer = None

    def __init__(
        self,
        target: TargetConfig,
        detector: ViolationDetector,
        sync_timing: Optional[SyncTimingConfig] = None,
    ) -> None:
        timing = sync_timing or SyncTimingConfig()
        self.bus = SnoopBus(target.bus)
        self.l2 = L2Cache(target.l2)
        self.cache_map = CacheStatusMap()
        self.locks = LockTable(timing)
        self.barriers = BarrierTable(timing)
        self.detector = detector
        self.gq: List[OutMsg] = []
        self.global_time = 0
        self.events_served = 0
        # Conservative-service bookkeeping: the largest timestamp served so
        # far.  Sync grants are floored at this value so a core resuming
        # from a wait can never emit an event older than anything already
        # served — the last piece of the cycle-by-cycle (and quantum)
        # zero-violation guarantee.
        self._grant_floor = -1
        self._serving_conservative = False
        self._batch_grant_min: Optional[int] = None
        # Pacing-limit staleness: for uniform-window schemes the limits are
        # a pure function of (global time, scheme window), so the per-core
        # rewrite can be skipped when neither moved.  True forces the first
        # service step to populate the limit bank.
        self._limits_stale = True
        # Cache-to-cache supply latency (an owner's L1 answers a snoop in
        # about the time an L2 hit takes on this target).
        self.c2c_latency = target.l2.cache.hit_latency
        # Reused outcome record: consumed by the scheduler (and the
        # speculative controller) before the next service step runs, so a
        # single instance avoids an allocation per manager step.
        self._outcome = ServiceOutcome(0, False, [], 0, True)

    # ------------------------------------------------------------------ #
    # One service step
    # ------------------------------------------------------------------ #

    def service(
        self,
        sim: SimulationState,
        conservative: Optional[bool] = None,
        force_window: Optional[int] = None,
        window_cap: Optional[int] = None,
        control_enabled: bool = True,
        drain_cores: Optional[List[int]] = None,
    ) -> ServiceOutcome:
        """Run one manager iteration.

        ``conservative``/``force_window`` override the scheme (used for the
        cycle-by-cycle replay after a speculative rollback); ``window_cap``
        caps every max local time at an absolute target time (used to park
        all cores at a checkpoint boundary).  ``drain_cores`` restricts
        which cores' OutQs this step consolidates (hierarchical manager
        mode: sub-managers forward the others); None drains every core.
        """
        scheme = sim.scheme
        if conservative is None:
            conservative = scheme.conservative_service

        merged = self._merge_outqs(sim, drain_cores)
        served = self._serve(sim, conservative)

        new_global = sim.global_time()
        advanced = new_global != self.global_time
        self.global_time = new_global
        if scheme.wants_core_clocks:
            # Only schemes that actually track per-core clocks (p2p) pay
            # for building the snapshot; the base hook is a no-op.
            scheme.on_global_advance(
                [
                    (cs.core_id, cs.local_time, not cs.finished and not cs.model.waiting_sync)
                    for cs in sim.cores
                ]
            )

        adjusted = False
        if control_enabled and force_window is None:
            adjusted = scheme.control_tick(
                self.detector, new_global, events_served=self.events_served
            )

        # Uniform-window limits only move when the global time or the
        # scheme's window does (control_tick is the sole window mutator on
        # this path; the speculative throttle always comes with a
        # force_window/window_cap override, which recomputes regardless).
        limits_ran = (
            advanced
            or adjusted
            or self._limits_stale
            or force_window is not None
            or window_cap is not None
            or not scheme.uniform_window
        )
        if limits_ran:
            self._update_max_locals(sim, force_window, window_cap)
            self._limits_stale = False

        outcome = self._outcome
        outcome.events_served = served
        outcome.events_merged = merged
        outcome.adjusted = adjusted
        outcome.violations = self.detector.drain_pending()
        outcome.global_time = new_global
        outcome.idle = served == 0 and not adjusted and not advanced
        # A parked core waits on an InQ delivery (only ``_serve`` delivers)
        # or on its pacing limit moving (only ``_update_max_locals`` writes
        # the limit bank); when neither happened this step, no wake
        # condition can have newly become true.
        outcome.maybe_wake = served > 0 or limits_ran
        san = self.sanitizer
        if san is not None and san.enabled:
            san.on_manager_step(
                sim,
                outcome,
                conservative,
                force_window is not None or window_cap is not None,
            )
        return outcome

    def _merge_outqs(
        self, sim: SimulationState, core_ids: Optional[List[int]] = None
    ) -> int:
        """Consolidate OutQ entries into the GQ in host arrival order.

        Returns the number of entries merged; ``core_ids`` restricts the
        drain (hierarchical mode).
        """
        fresh: Optional[List[OutMsg]] = None
        cores = sim.cores if core_ids is None else [sim.cores[i] for i in core_ids]
        for cs in cores:
            outq = cs.outq
            if not outq:
                continue
            if fresh is None:
                fresh = []
            append = fresh.append
            while outq:
                append(outq.popleft())
        if fresh is None:
            return 0
        fresh.sort(key=_ARRIVAL_ORDER)
        self.gq.extend(fresh)
        return len(fresh)

    def _serve(self, sim: SimulationState, conservative: bool) -> int:
        if not self.gq:
            return 0
        self._serving_conservative = conservative
        if conservative:
            # Serve only events *strictly* below the horizon, in timestamp
            # order — the violation-free gold-standard discipline.  Strict:
            # a core whose local time equals ``h`` is about to execute
            # cycle ``h`` and may still post events stamped ``h``; serving
            # at ``ts == h`` would split same-timestamp batches by host
            # arrival, making cycle-by-cycle timing host-schedule
            # dependent.  (The horizon accounts for frozen sync-blocked
            # cores; see SimulationState.service_horizon.)
            horizon = sim.service_horizon()
            if horizon is None:
                servable, self.gq = sorted(self.gq, key=_TIMESTAMP_ORDER), []
            else:
                servable = [m for m in self.gq if m.ts < horizon]
                if not servable:
                    return 0
                servable.sort(key=_TIMESTAMP_ORDER)
                self.gq = [m for m in self.gq if m.ts >= horizon]
        else:
            # Optimistic service: drain everything that has arrived, but
            # schedule the drained batch in timestamp order (the GQ exists
            # "to efficiently manage and schedule all the GQ events" —
            # paper section 2).  Nothing is held back, so violations still
            # occur whenever an event arrives *after* a younger-stamped
            # event was already served in an earlier batch — which is
            # precisely what grows with the slack bound.
            horizon = None
            servable, self.gq = self.gq, []
            servable.sort(key=_TIMESTAMP_ORDER)

        san = self.sanitizer
        if san is not None and san.enabled:
            san.on_serve_batch(servable, conservative, horizon)

        served = 0
        self._batch_grant_min: Optional[int] = None
        for index, msg in enumerate(servable):
            if (
                conservative
                and self._batch_grant_min is not None
                and msg.ts >= self._batch_grant_min
            ):
                # A sync grant issued earlier in this batch lowered the
                # horizon: a blocked core will resume below the remaining
                # events' timestamps.  Requeue them — the next service
                # round sees the pending grant through service_horizon().
                self.gq = servable[index:] + self.gq
                break
            self._serve_one(sim, msg)
            served += 1
            if msg.ts > self._grant_floor:
                self._grant_floor = msg.ts
        self.events_served += served
        return served

    # ------------------------------------------------------------------ #
    # Per-event service
    # ------------------------------------------------------------------ #

    def _serve_one(self, sim: SimulationState, msg: OutMsg) -> None:
        kind = msg.request.kind
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.on_gq_event(_KIND_NAMES[kind])
        if kind == RequestKind.BUS:
            self._serve_bus(sim, msg)
        elif kind == RequestKind.IFETCH:
            self._serve_ifetch(sim, msg)
        elif kind == RequestKind.WRITEBACK:
            self._serve_writeback(msg)
        elif kind == RequestKind.LOCK_ACQUIRE:
            grant_ts = self.locks.acquire(msg.request.sync_id, msg.core_id, msg.ts)
            if grant_ts is not None:
                self._push_grant(sim, msg.core_id, grant_ts)
        elif kind == RequestKind.LOCK_RELEASE:
            handoff = self.locks.release(msg.request.sync_id, msg.core_id, msg.ts)
            if handoff is not None:
                next_core, grant_ts = handoff
                self._push_grant(sim, next_core, grant_ts)
        elif kind == RequestKind.BARRIER_ARRIVE:
            releases = self.barriers.arrive(
                msg.request.sync_id, msg.core_id, msg.ts, msg.request.participants
            )
            if releases is not None:
                for core_id, release_ts in releases:
                    self._push_grant(sim, core_id, release_ts)
        else:  # pragma: no cover - guarded by RequestKind
            raise SimulationError(f"unknown request kind {kind}")

    def _serve_bus(self, sim: SimulationState, msg: OutMsg) -> None:
        core_id, ts, line = msg.core_id, msg.ts, msg.request.line_addr
        bus_op = msg.request.bus_op
        self.detector.check_bus(ts, self.global_time, core_id)
        self.detector.check_map(line, ts, self.global_time, core_id)
        grant = self.bus.grant_request(ts)
        snoop_seen = grant + self.bus.config.request_cycles

        if bus_op == BusOpKind.UPGR and not self.cache_map.is_sharer(line, core_id):
            # The upgrader's copy was invalidated while the UPGR was in
            # flight; the transaction degenerates to a full GETX.
            bus_op = BusOpKind.GETX

        if bus_op == BusOpKind.GETS:
            others, downgrade_target = self.cache_map.apply_gets(line, core_id)
            if downgrade_target is not None:
                self._push(sim, downgrade_target, InMsg(InMsgKind.DOWNGRADE, snoop_seen, line))
                # The dirty owner supplies the line; the L2 copy is
                # refreshed as part of the transfer (standard MESI).
                self.l2.writeback(line)
                data_ready = grant + self.c2c_latency
            else:
                data_ready = grant + self.l2.access(line, at=grant)
            _, done = self.bus.schedule_response(data_ready)
            fill = fill_state_for(BusOpKind.GETS, others)
            self._push(sim, core_id, InMsg(InMsgKind.FILL, done, line, fill))
        elif bus_op == BusOpKind.GETX:
            targets, source_owner = self.cache_map.apply_getx(line, core_id)
            for target in targets:
                self._push(sim, target, InMsg(InMsgKind.INVALIDATE, snoop_seen, line))
            if source_owner is not None:
                data_ready = grant + self.c2c_latency
            else:
                data_ready = grant + self.l2.access(line, at=grant)
            _, done = self.bus.schedule_response(data_ready)
            self._push(sim, core_id, InMsg(InMsgKind.FILL, done, line, MesiState.MODIFIED))
        elif bus_op == BusOpKind.UPGR:
            targets = self.cache_map.apply_upgr(line, core_id)
            for target in targets:
                self._push(sim, target, InMsg(InMsgKind.INVALIDATE, snoop_seen, line))
            done = snoop_seen
            self._push(sim, core_id, InMsg(InMsgKind.FILL, snoop_seen, line, MesiState.MODIFIED))
        else:  # pragma: no cover - guarded by BusOpKind
            raise SimulationError(f"unexpected bus op {bus_op}")
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.on_bus_grant(core_id, ts, grant, done, line, bus_op.name)

    def _serve_ifetch(self, sim: SimulationState, msg: OutMsg) -> None:
        """An instruction-line fetch: a read-only GETS over the bus.

        Code lines are never written, so no owner can exist and no
        snoops are generated; the map still records the sharer (which is
        why an I-fetch can raise map violations like any transaction).
        """
        core_id, ts, line = msg.core_id, msg.ts, msg.request.line_addr
        self.detector.check_bus(ts, self.global_time, core_id)
        self.detector.check_map(line, ts, self.global_time, core_id)
        grant = self.bus.grant_request(ts)
        self.cache_map.apply_gets(line, core_id)
        data_ready = grant + self.l2.access(line, at=grant)
        _, done = self.bus.schedule_response(data_ready)
        self._push(sim, core_id, InMsg(InMsgKind.IFILL, done, line))
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.on_bus_grant(core_id, ts, grant, done, line, "IFETCH")

    def _serve_writeback(self, msg: OutMsg) -> None:
        line = msg.request.line_addr
        self.detector.check_bus(msg.ts, self.global_time, msg.core_id)
        self.detector.check_map(line, msg.ts, self.global_time, msg.core_id)
        self.bus.grant_request(msg.ts)
        self.cache_map.apply_writeback(line, msg.core_id)
        self.l2.writeback(line)

    def _push(self, sim: SimulationState, core_id: int, msg: InMsg) -> None:
        sim.cores[core_id].inq.append(msg)

    def _push_grant(self, sim: SimulationState, core_id: int, grant_ts: int) -> None:
        """Deliver a sync grant; floored under conservative service so the
        resuming core cannot travel into the already-served past."""
        if self._serving_conservative and grant_ts < self._grant_floor:
            grant_ts = self._grant_floor
        if self._batch_grant_min is None or grant_ts < self._batch_grant_min:
            self._batch_grant_min = grant_ts
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.on_sync_grant(core_id, grant_ts)
        self._push(sim, core_id, InMsg(InMsgKind.SYNC_GRANT, grant_ts))

    # ------------------------------------------------------------------ #
    # Pacing
    # ------------------------------------------------------------------ #

    def _update_max_locals(
        self,
        sim: SimulationState,
        force_window: Optional[int],
        window_cap: Optional[int],
    ) -> None:
        scheme = sim.scheme
        global_time = self.global_time
        times = sim.local_times
        limits = sim.max_local_times
        if force_window is None and window_cap is None:
            if scheme.uniform_window:
                # Hot path: every core shares one window-derived limit
                # (exactly what the default max_local_for computes), written
                # straight into the flat bank.
                window = scheme.window()
                limit = None if window is None else global_time + window
                for idx, cs in enumerate(sim.cores):
                    if not cs.model.finished:
                        limits[idx] = limit
                return
            max_local_for = scheme.max_local_for
            for idx, cs in enumerate(sim.cores):
                if not cs.model.finished:
                    limits[idx] = max_local_for(cs.core_id, times[idx], global_time)
            return
        for idx, cs in enumerate(sim.cores):
            if cs.model.finished:
                continue
            if force_window is not None:
                limit: Optional[int] = global_time + force_window
            else:
                limit = scheme.max_local_for(cs.core_id, times[idx], global_time)
            if window_cap is not None:
                limit = window_cap if limit is None else min(limit, window_cap)
            limits[idx] = limit

    def quiescent(self, sim: SimulationState) -> bool:
        """True when no requests are in flight toward the manager."""
        return not self.gq and all(not cs.outq for cs in sim.cores)
