"""Checkpoint capture and restore (paper section 5.1).

SlackSim checkpoints by ``fork()``: the parent process's frozen address
space *is* the checkpoint, and copy-on-write makes its cost proportional to
the pages the child subsequently writes.  The in-memory analogue
(``repro.core.snapshot``) is the same shape: cache-array banks are
captured as dirty pages against shadow copies, the cache status map as an
undo journal, and only the small residue of the
:class:`~repro.core.state.SimulationState` root is deep-copied.  The
modeled cost follows the paper::

    cost = checkpoint_base_ns + pages_touched * checkpoint_per_page_ns

where ``pages_touched`` counts distinct *target* pages written since the
previous checkpoint — the same footprint-proportional shape as fork+COW.
The count is measured by :func:`take_snapshot` itself (it drains the
per-core touched-page sets) and carried on the snapshot, so callers
charge for what the snapshot actually saw rather than a separate
estimate.
"""

from __future__ import annotations

from typing import Optional

from repro.config import HostCostModel
from repro.core import snapshot as cow
from repro.core.state import SimulationState
from repro.errors import CheckpointError


class Snapshot:
    """One global checkpoint: a copy-on-write capture of the state root."""

    __slots__ = ("cow", "boundary", "host_time", "pages")

    def __init__(
        self, capture: cow.StateSnapshot, boundary: int, host_time: float, pages: int
    ) -> None:
        self.cow = capture
        self.boundary = boundary  # target time of the checkpoint
        self.host_time = host_time  # modeled host time it was taken
        #: Distinct target pages written since the previous checkpoint
        #: (measured here; drives the modeled checkpoint cost).
        self.pages = pages

    @property
    def host_pages(self) -> int:
        """Dirty SoA pages the capture actually copied (host-side)."""
        if self.cow is None:
            raise CheckpointError(
                "empty snapshot: no copy-on-write capture is attached "
                "(the snapshot was constructed without taking one)"
            )
        return self.cow.host_pages


def take_snapshot(state: SimulationState, boundary: int, host_time: float) -> Snapshot:
    """Capture a global checkpoint of ``state``.

    Counts and clears the per-core touched-page sets *before* the capture,
    so the next checkpoint is charged only for pages written after this
    one and a rolled-back replay re-counts from the checkpoint's zero.
    """
    pages = 0
    for cs in state.cores:
        pages += len(cs.model.pages_touched)
        cs.model.pages_touched.clear()
    return Snapshot(cow.take(state), boundary, host_time, pages)


def restore_snapshot(snapshot: Optional[Snapshot]) -> SimulationState:
    """Materialize a fresh working state from a snapshot.

    The snapshot itself stays pristine (a second rollback to the same
    checkpoint is possible) — mirroring how a forked parent can itself
    fork again after being awakened.
    """
    if snapshot is None:
        raise CheckpointError("no checkpoint available to roll back to")
    if snapshot.cow is None:
        raise CheckpointError(
            "empty snapshot: cannot restore a snapshot that carries no "
            "copy-on-write capture"
        )
    return cow.restore(snapshot.cow)


def checkpoint_cost_ns(cost: HostCostModel, pages: int) -> float:
    """Modeled host cost of taking one global checkpoint."""
    return cost.checkpoint_base_ns + pages * cost.checkpoint_per_page_ns
