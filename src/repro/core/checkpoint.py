"""Checkpoint capture and restore (paper section 5.1).

SlackSim checkpoints by ``fork()``: the parent process's frozen address
space *is* the checkpoint, and copy-on-write makes its cost proportional to
the pages the child subsequently writes.  The in-memory analogue here is a
deep copy of the snapshot-able :class:`~repro.core.state.SimulationState`
root, with a cost model::

    cost = checkpoint_base_ns + pages_touched * checkpoint_per_page_ns

where ``pages_touched`` counts distinct target pages written since the
previous checkpoint — the same footprint-proportional shape as fork+COW.
"""

from __future__ import annotations

import copy
from typing import Optional

from repro.config import HostCostModel
from repro.core.state import SimulationState
from repro.errors import CheckpointError


class Snapshot:
    """One global checkpoint: a frozen copy of the simulation state."""

    __slots__ = ("state", "boundary", "host_time", "pages")

    def __init__(
        self, state: SimulationState, boundary: int, host_time: float, pages: int
    ) -> None:
        self.state = state
        self.boundary = boundary  # target time of the checkpoint
        self.host_time = host_time  # modeled host time it was taken
        self.pages = pages


def take_snapshot(state: SimulationState, boundary: int, host_time: float) -> Snapshot:
    """Capture a global checkpoint of ``state``.

    Also counts and clears the per-core touched-page sets, so the *next*
    checkpoint is charged only for pages written after this one.
    """
    pages = 0
    for cs in state.cores:
        pages += len(cs.model.pages_touched)
        cs.model.pages_touched.clear()
    frozen = copy.deepcopy(state)
    return Snapshot(frozen, boundary, host_time, pages)


def restore_snapshot(snapshot: Optional[Snapshot]) -> SimulationState:
    """Materialize a fresh working state from a snapshot.

    The snapshot itself stays pristine (a second rollback to the same
    checkpoint is possible), so the restore is another deep copy — mirroring
    how a forked parent can itself fork again after being awakened.
    """
    if snapshot is None:
        raise CheckpointError("no checkpoint available to roll back to")
    return copy.deepcopy(snapshot.state)


def checkpoint_cost_ns(cost: HostCostModel, pages: int) -> float:
    """Modeled host cost of taking one global checkpoint."""
    return cost.checkpoint_base_ns + pages * cost.checkpoint_per_page_ns
