"""Exception hierarchy for the SlackSim reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Configuration problems are raised eagerly at construction time
(:class:`ConfigError`), never from deep inside a running simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No simulation thread can make progress.

    A correct slack simulation never deadlocks (simulated and simulation
    time never decrease); this error therefore signals an engine bug or a
    malformed workload (e.g. a barrier that not all threads reach) rather
    than an expected condition.
    """


class WorkloadError(ReproError):
    """A workload kernel produced an invalid operation stream."""


class CheckpointError(ReproError):
    """Checkpoint creation, discard, or rollback failed."""


class EpochError(ReproError):
    """Time-parallel epoch capture, transfer, or stitching failed.

    Raised by the machine-state wire codec (``repro.core.epochs``) on
    version/class mismatches and by the time-parallel harness
    (``repro.harness.timepar``) when an epoch chain cannot be stitched.
    """


class ProtocolError(SimulationError):
    """A cache-coherence invariant was broken (MESI state machine bug)."""
