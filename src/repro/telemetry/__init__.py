"""``repro.telemetry`` — tracing, metrics, and profiling for slack runs.

The simulator's terminal :class:`~repro.core.report.SimulationReport`
summarizes a run; this package makes the run's *dynamics* observable
while it executes:

- :class:`MetricsRegistry` — counters / gauges / histograms with a
  null-sink fast path, so disabled telemetry costs near zero in the
  optimized hot loop;
- :class:`Tracer` — per-core-thread spans and instants (compute bursts,
  L1 misses, bus grants, slack stalls, sync waits, checkpoints,
  rollbacks, replay windows, violations) exported as Chrome-trace /
  Perfetto JSON or a compact JSONL stream;
- :class:`Sampler` — periodic time series of violation rate, adaptive
  slack-bound trajectory, global-time progress, and queue depths;
- :class:`TelemetrySession` — the bundle a
  :class:`~repro.core.simulation.Simulation` accepts via its
  ``telemetry=`` argument and the engine's probe hooks call.

The hard contract: telemetry (on, off, or disabled) never changes a
report digest — probes observe, they never perturb.
"""

from repro.telemetry.features import FEATURE_DIMS, CounterSnapshot, IntervalFeatures
from repro.telemetry.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    sum_counter_docs,
)
from repro.telemetry.sampler import SAMPLE_COLUMNS, Sampler
from repro.telemetry.session import METRICS_SCHEMA, TelemetrySession
from repro.telemetry.tracer import (
    PID_HOST,
    PID_TARGET,
    TID_CONTROLLER,
    TID_MANAGER,
    TRACE_SCHEMA,
    Tracer,
    load_trace,
    summarize_trace,
    validate_chrome_trace,
)

__all__ = [
    "CounterSnapshot",
    "FEATURE_DIMS",
    "IntervalFeatures",
    "TelemetrySession",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "sum_counter_docs",
    "Tracer",
    "Sampler",
    "SAMPLE_COLUMNS",
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "PID_TARGET",
    "PID_HOST",
    "TID_MANAGER",
    "TID_CONTROLLER",
    "load_trace",
    "validate_chrome_trace",
    "summarize_trace",
]
