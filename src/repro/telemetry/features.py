"""Per-interval feature extraction for online phase detection.

The sampling subsystem (``repro.sampling``) classifies execution
intervals into phases from the counters the engine already maintains —
no new probes, no perturbation of the simulation.  A
:class:`CounterSnapshot` freezes the cumulative counters at an interval
boundary; subtracting two snapshots yields an :class:`IntervalFeatures`
record whose :meth:`~IntervalFeatures.vector` is the normalized feature
vector the phase detector clusters on:

``(violations/kcycle (squashed), IPC proxy, L1 miss mix, sync-stall mix)``

The violation dimension is special: it is *scheme-sensitive* (the same
code phase produces far more violations under unbounded slack than under
cycle-by-cycle), so intervals traversed in fast-forward mode compare
against centroids with that dimension masked (see
``repro.sampling.phases.PhaseDetector.classify(partial=True)``).  The
remaining dimensions are workload-intrinsic and survive the scheme swap.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.state import SimulationState

__all__ = ["CounterSnapshot", "IntervalFeatures", "FEATURE_DIMS"]

#: Feature-vector dimension names, in vector order.  Dimension 0 is the
#: scheme-sensitive one the detector can mask.
FEATURE_DIMS: Tuple[str, ...] = (
    "violations_per_kcycle",
    "ipc",
    "l1_miss_mix",
    "sync_mix",
)


class CounterSnapshot:
    """Cumulative engine counters frozen at one interval boundary.

    Pure observation: capturing reads counters, never mutates them, so a
    sampled run at rate 1.0 (capture at every cut, act on nothing)
    remains digest-identical to the unsampled run.
    """

    __slots__ = (
        "global_time",
        "core_cycles",
        "instructions",
        "l1_accesses",
        "l1_misses",
        "sync_stall_cycles",
        "bus_requests",
        "violations",
        "host_ns",
    )

    def __init__(
        self,
        global_time: int,
        core_cycles: int,
        instructions: int,
        l1_accesses: int,
        l1_misses: int,
        sync_stall_cycles: int,
        bus_requests: int,
        violations: int,
        host_ns: float,
    ) -> None:
        self.global_time = global_time
        self.core_cycles = core_cycles
        self.instructions = instructions
        self.l1_accesses = l1_accesses
        self.l1_misses = l1_misses
        self.sync_stall_cycles = sync_stall_cycles
        self.bus_requests = bus_requests
        self.violations = violations
        self.host_ns = host_ns

    @classmethod
    def capture(cls, state: SimulationState, host_ns: float) -> "CounterSnapshot":
        """Freeze the counters of ``state`` (``host_ns`` is the modeled
        host clock at the boundary, from ``Scheduler.simulation_time_ns``)."""
        l1_accesses = 0
        l1_misses = 0
        instructions = 0
        sync_stall = 0
        for cs in state.cores:
            model = cs.model
            l1 = model.l1
            l1_accesses += l1.loads + l1.stores
            l1_misses += l1.load_misses + l1.store_misses + l1.upgrades
            instructions += model.instructions
            sync_stall += model.sync_stall_cycles
        manager = state.manager
        return cls(
            global_time=state.global_time(),
            core_cycles=sum(state.local_times),
            instructions=instructions,
            l1_accesses=l1_accesses,
            l1_misses=l1_misses,
            sync_stall_cycles=sync_stall,
            bus_requests=manager.bus.requests,
            violations=manager.detector.total,
            host_ns=host_ns,
        )

    def delta(self, entry: "CounterSnapshot") -> "IntervalFeatures":
        """Counters accumulated between ``entry`` and this snapshot."""
        return IntervalFeatures(
            cycles=self.global_time - entry.global_time,
            core_cycles=self.core_cycles - entry.core_cycles,
            instructions=self.instructions - entry.instructions,
            l1_accesses=self.l1_accesses - entry.l1_accesses,
            l1_misses=self.l1_misses - entry.l1_misses,
            sync_stall_cycles=self.sync_stall_cycles - entry.sync_stall_cycles,
            bus_requests=self.bus_requests - entry.bus_requests,
            violations=self.violations - entry.violations,
            host_ns=self.host_ns - entry.host_ns,
        )


class IntervalFeatures:
    """Counter deltas over one interval plus the derived feature vector."""

    __slots__ = (
        "cycles",
        "core_cycles",
        "instructions",
        "l1_accesses",
        "l1_misses",
        "sync_stall_cycles",
        "bus_requests",
        "violations",
        "host_ns",
    )

    def __init__(
        self,
        cycles: int,
        core_cycles: int,
        instructions: int,
        l1_accesses: int,
        l1_misses: int,
        sync_stall_cycles: int,
        bus_requests: int,
        violations: int,
        host_ns: float,
    ) -> None:
        self.cycles = cycles
        self.core_cycles = core_cycles
        self.instructions = instructions
        self.l1_accesses = l1_accesses
        self.l1_misses = l1_misses
        self.sync_stall_cycles = sync_stall_cycles
        self.bus_requests = bus_requests
        self.violations = violations
        self.host_ns = host_ns

    # -- derived rates ------------------------------------------------- #

    @property
    def ipc(self) -> float:
        """Per-core IPC proxy: instructions per core-cycle, in ``[0, 1]``
        (every committed instruction costs at least one core cycle)."""
        return self.instructions / self.core_cycles if self.core_cycles > 0 else 0.0

    @property
    def cpi(self) -> float:
        """Aggregate core-cycles per instruction over the interval."""
        return self.core_cycles / self.instructions if self.instructions > 0 else 0.0

    @property
    def l1_miss_mix(self) -> float:
        """L1 misses per access (0 when the interval made no accesses)."""
        return self.l1_misses / self.l1_accesses if self.l1_accesses > 0 else 0.0

    @property
    def sync_mix(self) -> float:
        """Sync-stall core-cycles as a fraction of all core-cycles."""
        return (
            self.sync_stall_cycles / self.core_cycles if self.core_cycles > 0 else 0.0
        )

    @property
    def violations_per_kcycle(self) -> float:
        """Violations per thousand global cycles."""
        return 1000.0 * self.violations / self.cycles if self.cycles > 0 else 0.0

    @property
    def violation_rate(self) -> float:
        """Violations per global cycle (the report's rate convention)."""
        return self.violations / self.cycles if self.cycles > 0 else 0.0

    def vector(self) -> Tuple[float, float, float, float]:
        """Normalized feature vector (all dimensions in ``[0, 1)``).

        The violation dimension is squashed ``v/(1+v)`` so schemes with
        dense violations still land in the unit box and the clustering
        distance stays comparable across dimensions.
        """
        vpk = self.violations_per_kcycle
        return (vpk / (1.0 + vpk), self.ipc, self.l1_miss_mix, self.sync_mix)
