"""Periodic time-series sampler for a running simulation.

Pac-Sim-style live monitoring: every ``period`` target cycles (checked
after each manager service step, the natural heartbeat of the paradigm)
one row of simulation dynamics is appended — violation rate, the adaptive
slack-bound trajectory, global-time progress, and scheduler queue depths.
Rows are plain tuples; the whole series exports as a columns+rows table
inside the metrics document.

The sampler only *reads* simulation state.  It is host-side: samples
taken inside a speculative interval that later rolls back are kept (they
describe what the simulation actually did, wasted work included).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["Sampler", "SAMPLE_COLUMNS"]

#: Column names, in row order.
SAMPLE_COLUMNS = (
    "global_time",
    "host_ns",
    "violations_total",
    "violation_rate",
    "window",
    "gq_depth",
    "inq_total",
    "outq_total",
    "ready_threads",
    "events_served",
    "checkpoints",
    "rollbacks",
)


class Sampler:
    """Collects one metrics row every ``period`` target cycles."""

    __slots__ = ("period", "rows", "_next_at")

    def __init__(self, period: int = 1000) -> None:
        if period <= 0:
            raise ValueError("sample period must be positive")
        self.period = period
        self.rows: List[Tuple] = []
        self._next_at = 0  # sample immediately on the first heartbeat

    def maybe_sample(self, scheduler, outcome, host_now: float) -> bool:
        """Record a row if the sampling period has elapsed.

        Called after every manager service step with the step's
        :class:`~repro.core.manager.ServiceOutcome`; returns True when a
        row was recorded.
        """
        global_time = outcome.global_time
        if global_time < self._next_at:
            return False
        self._next_at = global_time + self.period
        self._sample(scheduler, global_time, host_now)
        return True

    def _sample(self, scheduler, global_time: int, host_now: float) -> None:
        state = scheduler.sim.state
        manager = state.manager
        detector = manager.detector
        violations = detector.total
        window = state.scheme.window()
        inq_total = 0
        outq_total = 0
        for cs in state.cores:
            inq_total += len(cs.inq)
            outq_total += len(cs.outq)
        stats = scheduler.stats
        self.rows.append(
            (
                global_time,
                host_now,
                violations,
                violations / global_time if global_time > 0 else 0.0,
                window,  # None = unbounded slack
                len(manager.gq),
                inq_total,
                outq_total,
                len(scheduler._heap),
                manager.events_served,
                stats.checkpoints,
                stats.rollbacks,
            )
        )

    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """The series as a JSON-serializable columns+rows table."""
        return {
            "period": self.period,
            "columns": list(SAMPLE_COLUMNS),
            "rows": [list(row) for row in self.rows],
        }

    def series(self, column: str) -> List[Tuple[int, Optional[float]]]:
        """One column as ``(global_time, value)`` pairs (for plotting)."""
        index = SAMPLE_COLUMNS.index(column)
        return [(row[0], row[index]) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __deepcopy__(self, memo) -> "Sampler":
        # Host-side recording is shared, never checkpointed/rolled back.
        return self
