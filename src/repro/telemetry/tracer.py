"""Event tracer: per-thread spans exported as Chrome trace / Perfetto JSON.

Two synthetic trace "processes" separate the simulation's two clock
domains (open either in Perfetto or ``chrome://tracing``):

- **pid 1 — target**: the simulated CMP's timeline in target cycles
  (rendered as microseconds: 1 cycle = 1 us tick).  One track per core
  carries compute bursts, L1 miss requests, stall skips, slack stalls,
  and sync waits; the manager track carries bus grants, sync grants,
  violations, and global-time counters.
- **pid 2 — host**: the *modeled* host timeline in nanoseconds
  (``ts`` in microseconds).  Manager service spans and the
  checkpoint/rollback/replay spans of the speculative controller live
  here.

Events are buffered as compact tuples and serialized on export, so the
recording cost per event is an append.  A hard ``max_events`` cap bounds
memory; dropped events are *counted*, never silently discarded
(``dropped`` lands in the exported metadata).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Tracer",
    "PID_TARGET",
    "PID_HOST",
    "TID_MANAGER",
    "TID_CONTROLLER",
    "load_trace",
    "validate_chrome_trace",
    "summarize_trace",
]

#: Synthetic process ids (clock domains).
PID_TARGET = 1
PID_HOST = 2

#: Synthetic thread ids for non-core tracks (cores use their core id).
TID_MANAGER = 1000
TID_CONTROLLER = 1001

#: Schema tag written into exported documents.
TRACE_SCHEMA = "repro.telemetry.trace/v1"

#: Phases we emit (and accept in validation): complete, instant, counter,
#: and metadata.
_KNOWN_PHASES = frozenset("XiCM")


class Tracer:
    """Records trace events; exports Chrome-trace JSON and JSONL."""

    __slots__ = ("events", "max_events", "dropped", "_thread_names")

    def __init__(self, max_events: int = 2_000_000) -> None:
        #: Buffered events: (ph, pid, tid, name, ts, dur, args) tuples.
        self.events: List[Tuple] = []
        self.max_events = max_events
        self.dropped = 0
        self._thread_names: Dict[Tuple[int, int], str] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        self._thread_names[(pid, tid)] = name

    def complete(
        self,
        pid: int,
        tid: int,
        name: str,
        ts: float,
        dur: float,
        args: Optional[dict] = None,
    ) -> None:
        """Record a complete span (``ph: X``)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(("X", pid, tid, name, ts, dur, args))

    def instant(
        self, pid: int, tid: int, name: str, ts: float, args: Optional[dict] = None
    ) -> None:
        """Record an instant event (``ph: i``)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(("i", pid, tid, name, ts, None, args))

    def counter(self, pid: int, tid: int, name: str, ts: float, values: dict) -> None:
        """Record a counter sample (``ph: C``)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(("C", pid, tid, name, ts, None, values))

    def __len__(self) -> int:
        return len(self.events)

    def __deepcopy__(self, memo) -> "Tracer":
        # Host-side recording is shared, never checkpointed/rolled back.
        return self

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def _iter_chrome_events(self) -> Iterable[dict]:
        for (pid, tid), name in sorted(self._thread_names.items()):
            yield {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        for ph, pid, tid, name, ts, dur, args in self.events:
            event = {"ph": ph, "pid": pid, "tid": tid, "name": name, "ts": ts}
            if dur is not None:
                event["dur"] = dur
            if args is not None:
                event["args"] = args
            if ph == "i":
                event["s"] = "t"  # thread-scoped instant
            yield event

    def chrome_doc(self) -> dict:
        """The trace as a Chrome-trace JSON object (Perfetto-loadable)."""
        events = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": PID_TARGET,
                "tid": 0,
                "args": {"name": "target (cycles)"},
            },
            {
                "ph": "M",
                "name": "process_name",
                "pid": PID_HOST,
                "tid": 0,
                "args": {"name": "host (modeled)"},
            },
        ]
        events.extend(self._iter_chrome_events())
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA,
                "recorded_events": len(self.events),
                "dropped_events": self.dropped,
            },
        }

    def write_chrome(self, path) -> None:
        """Write the Chrome-trace JSON document to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_doc(), fh, separators=(",", ":"))
            fh.write("\n")

    def write_jsonl(self, path) -> None:
        """Write a compact JSONL stream: header line, then one event/line."""
        with open(path, "w", encoding="utf-8") as fh:
            header = {
                "schema": TRACE_SCHEMA,
                "recorded_events": len(self.events),
                "dropped_events": self.dropped,
            }
            fh.write(json.dumps(header, separators=(",", ":")) + "\n")
            for event in self._iter_chrome_events():
                fh.write(json.dumps(event, separators=(",", ":")) + "\n")


# ---------------------------------------------------------------------- #
# Loading / validation / summary (used by ``repro trace`` and the tests)
# ---------------------------------------------------------------------- #


def load_trace(path) -> dict:
    """Load a trace file written by :class:`Tracer` (JSON or JSONL)."""
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.read(1)
        fh.seek(0)
        if first == "{":
            try:
                return json.load(fh)
            except json.JSONDecodeError:
                fh.seek(0)
        events = []
        meta: dict = {}
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "ph" in record:
                events.append(record)
            else:
                meta = record
        return {"traceEvents": events, "otherData": meta}


def validate_chrome_trace(doc: dict) -> List[str]:
    """Structural validation; returns a list of error strings (empty = ok).

    Checks the Chrome-trace contract every consumer relies on: a
    ``traceEvents`` list whose entries carry ``ph``/``name``/``pid``/
    ``tid`` (plus numeric ``ts`` and non-negative ``dur`` where the phase
    requires them), and — for the host process, whose modeled clock is
    monotone per thread — that spans are emitted in non-decreasing
    timestamp order per thread.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    last_host_ts: Dict[Tuple[object, object], float] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            errors.append(f"{where}: bad or unknown ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing name")
        if "pid" not in event or "tid" not in event:
            errors.append(f"{where}: missing pid/tid")
            continue
        if ph == "M":
            continue  # metadata carries no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing or non-numeric ts")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs dur >= 0 (got {dur!r})")
            if event["pid"] == PID_HOST:
                key = (event["pid"], event["tid"])
                last = last_host_ts.get(key)
                if last is not None and ts < last:
                    errors.append(
                        f"{where}: host span ts went backwards on tid "
                        f"{event['tid']} ({ts} < {last})"
                    )
                else:
                    last_host_ts[key] = ts
    return errors


def summarize_trace(doc: dict) -> str:
    """Human-readable roll-up of a trace document."""
    events = doc.get("traceEvents", [])
    meta = doc.get("otherData", {})
    by_name: Dict[str, int] = {}
    span_time: Dict[str, float] = {}
    threads: Dict[Tuple[object, object], int] = {}
    ts_lo: Optional[float] = None
    ts_hi: Optional[float] = None
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            continue
        name = event.get("name", "?")
        by_name[name] = by_name.get(name, 0) + 1
        key = (event.get("pid"), event.get("tid"))
        threads[key] = threads.get(key, 0) + 1
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            ts_lo = ts if ts_lo is None or ts < ts_lo else ts_lo
            end = ts + event.get("dur", 0) if ph == "X" else ts
            ts_hi = end if ts_hi is None or end > ts_hi else ts_hi
        if ph == "X":
            span_time[name] = span_time.get(name, 0.0) + event.get("dur", 0)
    lines = [
        f"events   : {sum(by_name.values())} "
        f"({meta.get('dropped_events', 0)} dropped at record time)",
        f"threads  : {len(threads)}",
        f"timespan : {ts_lo if ts_lo is not None else '-'} .. "
        f"{ts_hi if ts_hi is not None else '-'}",
        "by event name:",
    ]
    for name in sorted(by_name, key=lambda n: -by_name[n]):
        extra = f"  (total dur {span_time[name]:.1f})" if name in span_time else ""
        lines.append(f"  {name:<20} {by_name[name]:>9}{extra}")
    return "\n".join(lines)
