"""Metrics instruments: counters, gauges, histograms, and their registry.

The design constraint is the PR-1 hot loop: a probe site that fires
millions of times per run must cost near zero when telemetry is off.  Two
layers provide that:

- probe sites guard on ``session is not None and session.enabled`` (a
  couple of attribute loads) before touching any instrument;
- code that holds an instrument reference unconditionally can be handed
  the :data:`NULL_REGISTRY`, whose instruments are shared no-op objects,
  so the reference stays valid and every call is a cheap no-op.

Instruments are host-side accounting: they are never part of the
snapshot-able :class:`~repro.core.state.SimulationState` and are never
rolled back (mirroring :class:`~repro.core.scheduler.HostStats`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "sum_counter_docs",
]


def sum_counter_docs(docs: Iterable[Mapping[str, object]]) -> Dict[str, int]:
    """Sum per-source counter documents into one fleet-wide view.

    Each ``doc`` is the ``counters`` section of a
    :meth:`MetricsRegistry.to_dict` (name → cumulative count).  Unlike
    :meth:`MetricsRegistry.merge` — which *accumulates* into live
    instruments and therefore must only ever see deltas — this is a pure
    fold over point-in-time snapshots, which is exactly what a fabric
    coordinator holds for each worker's latest heartbeat.
    """
    totals: Dict[str, int] = {}
    for doc in docs:
        for name, value in doc.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                totals[name] = totals.get(name, 0) + int(value)
    return dict(sorted(totals.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Default histogram bucket upper bounds: powers of two up to 64K plus a
#: catch-all — wide enough for cycle latencies and batch sizes alike.
_DEFAULT_BUCKETS = tuple(2 ** i for i in range(17))


class Histogram:
    """Fixed-bucket histogram (cumulative-style, like Prometheus).

    ``buckets`` are inclusive upper bounds in ascending order; one
    implicit +inf bucket catches the rest.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.buckets = tuple(buckets) if buckets is not None else _DEFAULT_BUCKETS
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()
    name = "null"
    value = 0
    total = 0.0
    count = 0
    buckets: tuple = ()
    counts: List[int] = []

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def mean(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Creates and holds named instruments; renders them as plain data.

    Instrument accessors are idempotent: asking twice for the same name
    returns the same object (so probe sites can pre-bind references).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, buckets)
        return inst

    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Plain-data (JSON-serializable) view of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                    "mean": h.mean(),
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def merge(self, doc: dict) -> None:
        """Fold another registry's :meth:`to_dict` document into this one.

        Used to merge per-worker metrics from pool subprocesses into the
        parent session: counters and histogram contents add, gauges keep
        the last write.  A histogram whose bucket bounds differ from the
        local instrument's is skipped (cannot be combined losslessly);
        in practice buckets come from the same code and always match.
        """
        if not self.enabled:
            return
        for name, value in doc.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in doc.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in doc.get("histograms", {}).items():
            buckets = tuple(data.get("buckets", ()))
            inst = self.histogram(name, buckets or None)
            if tuple(inst.buckets) != buckets:
                continue
            inst.counts = [a + b for a, b in zip(inst.counts, data["counts"])]
            inst.total += data["sum"]
            inst.count += data["count"]

    def __deepcopy__(self, memo) -> "MetricsRegistry":
        # Host-side accounting is shared, never checkpointed/rolled back.
        return self


class NullMetricsRegistry(MetricsRegistry):
    """A registry whose instruments are shared no-ops (disabled sink)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None):  # type: ignore[override]
        return _NULL_INSTRUMENT


#: Shared disabled registry: hand this out wherever a real one is absent.
NULL_REGISTRY = NullMetricsRegistry()
