"""TelemetrySession: the bundle the engine's probe hooks talk to.

One session owns a :class:`~repro.telemetry.metrics.MetricsRegistry`, an
optional :class:`~repro.telemetry.tracer.Tracer`, and an optional
:class:`~repro.telemetry.sampler.Sampler`, and exposes the ``on_*`` probe
methods that the manager, scheduler, runners, schemes, and speculative
controller call.

The contract with the engine (see DESIGN.md "Telemetry probes"):

- **Observation only.**  Probe methods read scalars and append to
  host-side buffers; they never mutate simulation state, draw from any
  RNG, or contribute to modeled host cost — so report digests are
  bit-for-bit identical with telemetry on, off, or disabled.
- **Near-zero disabled cost.**  Every probe site guards on
  ``session is not None and session.enabled`` before calling anything
  here; a disabled session (``TelemetrySession.disabled()``) exercises
  only that check, which is the fast path the bench telemetry guard
  measures.
- **Checkpoint-transparent.**  The session is reachable from deep-copied
  simulation state (manager, scheme policies, core models hold a
  reference), so ``__deepcopy__`` returns ``self``: snapshots share the
  live session, and recording continues across rollbacks — wasted
  (rolled-back) work stays visible in the trace, exactly like host time.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.telemetry.metrics import NULL_REGISTRY, MetricsRegistry
from repro.telemetry.sampler import Sampler
from repro.telemetry.tracer import (
    PID_HOST,
    PID_TARGET,
    TID_CONTROLLER,
    TID_MANAGER,
    Tracer,
)

__all__ = ["TelemetrySession"]

#: Schema tag written into exported metrics documents.
METRICS_SCHEMA = "repro.telemetry.metrics/v1"


class TelemetrySession:
    """Aggregates tracing, metrics, and sampling for one simulation run."""

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        sample_period: Optional[int] = 1000,
        max_trace_events: int = 2_000_000,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.metrics: MetricsRegistry = (
            MetricsRegistry() if (enabled and metrics) else NULL_REGISTRY
        )
        self.tracer: Optional[Tracer] = (
            Tracer(max_events=max_trace_events) if (enabled and trace) else None
        )
        self.sampler: Optional[Sampler] = (
            Sampler(sample_period) if (enabled and sample_period) else None
        )
        self._last_global_time = -1
        self._replay_start_host: Optional[float] = None
        self._replay_boundary = 0

    @classmethod
    def disabled(cls) -> "TelemetrySession":
        """A null-sink session: hooks run their guard check and nothing
        else (used to measure the disabled-telemetry fast path)."""
        return cls(enabled=False)

    def __deepcopy__(self, memo) -> "TelemetrySession":
        # Shared across snapshots: telemetry is host-side accounting and is
        # never rolled back (see module docstring).
        return self

    def absorb_worker_metrics(self, doc: Optional[dict]) -> None:
        """Merge a pool worker's metrics document into this session.

        Parallel experiment runs execute in subprocesses; each worker
        records into its own metrics-only session and ships the plain-data
        snapshot back, which the parent folds in here.  Traces and samples
        are per-run artifacts and are not merged.
        """
        if doc and self.enabled:
            self.metrics.merge(doc)

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def attach(self, num_cores: int) -> None:
        """Name the trace tracks for a ``num_cores``-core simulation."""
        tracer = self.tracer
        if tracer is None:
            return
        for core_id in range(num_cores):
            tracer.set_thread_name(PID_TARGET, core_id, f"core {core_id}")
        tracer.set_thread_name(PID_TARGET, TID_MANAGER, "manager")
        tracer.set_thread_name(PID_HOST, TID_MANAGER, "manager")
        tracer.set_thread_name(PID_HOST, TID_CONTROLLER, "controller")

    # ------------------------------------------------------------------ #
    # Core-thread probes (CoreRunner / CoreModel)
    # ------------------------------------------------------------------ #

    def on_core_request(self, core_id: int, local_time: int, kind_name: str,
                        line_addr: int) -> None:
        """An OutQ request left a core (BUS = an L1 miss)."""
        self.metrics.counter(f"core.requests.{kind_name}").inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                PID_TARGET, core_id, kind_name, local_time, {"line": line_addr}
            )

    def on_compute_burst(
        self, core_id: int, start: int, cycles: int, instructions: int
    ) -> None:
        """A bulk-committed compute burst covering target cycles
        ``[start, start+cycles)``."""
        self.metrics.counter("core.compute_burst_cycles").inc(cycles)
        self.metrics.histogram("core.compute_burst_len").observe(cycles)
        tracer = self.tracer
        if tracer is not None:
            tracer.complete(
                PID_TARGET, core_id, "compute_burst", start, cycles,
                {"instructions": instructions},
            )

    def on_stall_skip(self, core_id: int, start: int, cycles: int) -> None:
        """A bulk-skipped fully-stalled stretch (waiting on a fill)."""
        self.metrics.counter("core.stall_skip_cycles").inc(cycles)
        tracer = self.tracer
        if tracer is not None:
            tracer.complete(PID_TARGET, core_id, "stall", start, cycles)

    def on_slack_stall(self, core_id: int, local_time: int,
                       max_local: Optional[int]) -> None:
        """A core blocked at its slack-window edge (``max_local_time``)."""
        self.metrics.counter("core.slack_stalls").inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                PID_TARGET, core_id, "slack_stall", local_time,
                {"max_local": max_local},
            )

    def on_sync_wait(self, core_id: int, start: int, grant_ts: int) -> None:
        """A descheduled sync wait resolved by a grant stamped
        ``grant_ts`` (span on the waiting core's target track)."""
        dur = grant_ts - start
        if dur < 0:
            dur = 0
        self.metrics.counter("core.sync_waits").inc()
        self.metrics.histogram("core.sync_wait_cycles").observe(dur)
        tracer = self.tracer
        if tracer is not None:
            tracer.complete(PID_TARGET, core_id, "sync_wait", start, dur)

    def on_fill(self, core_id: int) -> None:
        """A bus transaction completed into a core's L1."""
        self.metrics.counter("core.fills").inc()

    def on_sync_resume(self, core_id: int) -> None:
        """A lock grant / barrier release resumed a core's pipeline."""
        self.metrics.counter("core.sync_resumes").inc()

    # ------------------------------------------------------------------ #
    # Manager probes (ManagerState / ManagerRunner / Scheduler)
    # ------------------------------------------------------------------ #

    def on_gq_event(self, kind_name: str) -> None:
        """One GQ event served (mix of traffic by request kind)."""
        self.metrics.counter(f"manager.served.{kind_name}").inc()

    def on_bus_grant(
        self, core_id: int, ts: int, grant: int, done: int, line_addr: int,
        op_name: str,
    ) -> None:
        """The snooping bus granted a request stamped ``ts`` at ``grant``;
        data is ready at ``done``."""
        self.metrics.counter("manager.bus_grants").inc()
        self.metrics.histogram("bus.grant_delay_cycles").observe(grant - ts)
        self.metrics.histogram("bus.service_latency_cycles").observe(done - grant)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                PID_TARGET, TID_MANAGER, "bus_grant", grant,
                {"core": core_id, "line": line_addr, "op": op_name, "ready": done},
            )

    def on_sync_grant(self, core_id: int, grant_ts: int) -> None:
        """The manager delivered a lock grant / barrier release."""
        self.metrics.counter("manager.sync_grants").inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                PID_TARGET, TID_MANAGER, "sync_grant", grant_ts, {"core": core_id}
            )

    def on_violation(self, record) -> None:
        """One detected simulation violation (bus or map)."""
        self.metrics.counter(f"violations.{record.vtype}").inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                PID_TARGET, TID_MANAGER, "violation", record.global_time,
                {"type": record.vtype, "core": record.core_id, "ts": record.ts},
            )

    def on_manager_service(
        self, host_start: float, cost_ns: float, served: int, merged: int,
        global_time: int,
    ) -> None:
        """One non-idle manager service step (span on the host timeline)."""
        self.metrics.counter("manager.service_steps").inc()
        self.metrics.counter("manager.events_served").inc(served)
        self.metrics.histogram("manager.batch_size").observe(served)
        tracer = self.tracer
        if tracer is None:
            return
        tracer.complete(
            PID_HOST, TID_MANAGER, "service", host_start / 1000.0,
            cost_ns / 1000.0, {"served": served, "merged": merged},
        )
        if global_time != self._last_global_time:
            self._last_global_time = global_time
            tracer.counter(
                PID_TARGET, TID_MANAGER, "global_time", global_time,
                {"cycles": global_time},
            )

    # ------------------------------------------------------------------ #
    # Scheme probes (adaptive slack / adaptive quantum)
    # ------------------------------------------------------------------ #

    def on_window_adjust(self, kind: str, global_time: int, window: int) -> None:
        """A feedback controller changed its window (slack bound or
        quantum) — the trajectory the paper's section 4 is about."""
        self.metrics.counter("scheme.adjustments").inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                PID_TARGET, TID_MANAGER, "window_adjust", global_time,
                {"kind": kind, "window": window},
            )
            tracer.counter(
                PID_TARGET, TID_MANAGER, "slack_window", global_time,
                {"window": window},
            )

    # ------------------------------------------------------------------ #
    # Speculation probes (CheckpointController)
    # ------------------------------------------------------------------ #

    def on_checkpoint(
        self,
        host_start: float,
        cost_ns: float,
        boundary: int,
        pages: int,
        host_pages: int = 0,
    ) -> None:
        """A global checkpoint was established at ``boundary``.

        ``pages`` is the modeled (target) touched-page count that priced
        the checkpoint; ``host_pages`` is the number of dirty SoA pages
        the copy-on-write capture actually copied into its shadows.
        """
        self.metrics.counter("controller.checkpoints").inc()
        self.metrics.histogram("controller.checkpoint_pages").observe(pages)
        self.metrics.histogram("controller.checkpoint_host_pages").observe(host_pages)
        tracer = self.tracer
        if tracer is not None:
            tracer.complete(
                PID_HOST, TID_CONTROLLER, "checkpoint", host_start / 1000.0,
                cost_ns / 1000.0,
                {"boundary": boundary, "pages": pages, "host_pages": host_pages},
            )

    def on_rollback(
        self, host_start: float, cost_ns: float, global_time: int, wasted: int
    ) -> None:
        """A tracked violation triggered a rollback; the cycle-by-cycle
        replay window opens when the rollback cost has been paid."""
        self.metrics.counter("controller.rollbacks").inc()
        self.metrics.counter("controller.wasted_target_cycles").inc(wasted)
        tracer = self.tracer
        if tracer is not None:
            tracer.complete(
                PID_HOST, TID_CONTROLLER, "rollback", host_start / 1000.0,
                cost_ns / 1000.0, {"at_global_time": global_time, "wasted": wasted},
            )
        self._replay_start_host = host_start + cost_ns
        self._replay_boundary = global_time

    def on_replay_end(self, host_end: float) -> None:
        """The forced cycle-by-cycle replay reached the next boundary."""
        start = self._replay_start_host
        self._replay_start_host = None
        self.metrics.counter("controller.replays").inc()
        tracer = self.tracer
        if tracer is not None and start is not None:
            tracer.complete(
                PID_HOST, TID_CONTROLLER, "replay", start / 1000.0,
                max(0.0, host_end - start) / 1000.0,
                {"from_global_time": self._replay_boundary},
            )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def to_metrics_doc(self, meta: Optional[dict] = None) -> dict:
        """The metrics + samples document (JSON-serializable)."""
        doc = {"schema": METRICS_SCHEMA, "meta": meta or {}}
        doc.update(self.metrics.to_dict())
        doc["samples"] = self.sampler.to_dict() if self.sampler is not None else None
        if self.tracer is not None:
            doc["trace"] = {
                "recorded_events": len(self.tracer),
                "dropped_events": self.tracer.dropped,
            }
        return doc

    def write_metrics(self, path, meta: Optional[dict] = None) -> None:
        """Write the metrics document to ``path`` as pretty JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_metrics_doc(meta), fh, indent=2)
            fh.write("\n")
