"""``repro.sampling`` — live statistical sampling of slack simulations.

Pac-Sim-style sampled simulation as a first-class mode of operation:
phases are detected *online* (no offline profiling pass), representative
intervals are simulated in detail, the rest are fast-forwarded under
unbounded slack with a functional-warmup window, and the terminal
estimates (CPI, violation rate, slowdown) carry Student-t confidence
intervals extrapolated per phase.

The subsystem composes three layers plus the harness glue:

- :class:`~repro.sampling.phases.PhaseDetector` — incremental
  leader-follower clustering over per-interval feature vectors
  (``repro.telemetry.features``) on an injectable seeded RNG;
- :class:`~repro.sampling.engine.SamplingConfig` /
  :func:`~repro.sampling.engine.run_sampled` — the interval-cut loop on
  the resumable ``Scheduler.run(stop_when=...)`` seam, with COW
  snapshots guarding speculative skips;
- :func:`~repro.sampling.estimator.estimate` — stratified per-phase
  ratio estimators with Welch-combined confidence intervals
  (``repro.stats.aggregate``);
- :func:`~repro.sampling.frontier.sampling_frontier` — the schemes ×
  sampling-rates error-vs-speedup table (``BENCH_sampling.json``).

Determinism contract: same spec + same sample seed ⇒ byte-identical
sampled report and estimates; at rate 1.0 the engine degenerates to a
pure cut loop and the report digest is byte-identical to the unsampled
run for every scheme kind.
"""

from repro.sampling.engine import SampledRunResult, SamplingConfig, SamplingStats, run_sampled
from repro.sampling.estimator import IntervalSample, SampledEstimate, estimate
from repro.sampling.frontier import sampling_frontier
from repro.sampling.phases import PhaseDetector

__all__ = [
    "IntervalSample",
    "PhaseDetector",
    "SampledEstimate",
    "SampledRunResult",
    "SamplingConfig",
    "SamplingStats",
    "estimate",
    "run_sampled",
    "sampling_frontier",
]
