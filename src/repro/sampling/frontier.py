"""The error-vs-speedup frontier: schemes x sampling rates.

Sampling buys simulation speed by measuring less; the honest way to
present that trade is the whole frontier, not one operating point.  This
experiment sweeps the sampling rate for each scheme on a fixed workload,
compares every sampled run's estimates against the scheme's *full*
(unsampled-equivalent, rate 1.0) run, and records:

- the CPI and violation-rate estimation errors and whether each metric's
  confidence interval covers the full-run value (the estimator's own
  honesty check);
- the modeled speedup (extrapolated detailed host time over the sampled
  run's actual modeled host time) and the wall-clock speedup actually
  observed on this host;
- phase/interval accounting (how much the detector measured).

The table is written to ``BENCH_sampling.json`` with the host
fingerprint stamped, mirroring ``BENCH_kernel.json``: the wall-clock
column is only comparable against runs from the same fingerprint.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import (
    AdaptiveConfig,
    SchemeConfig,
    SlackConfig,
    paper_host_config,
    paper_target_config,
)
from repro.harness.cache import RunSpec
from repro.harness.experiments import ExperimentResult
from repro.harness.hostinfo import host_fingerprint
from repro.sampling.engine import SampledRunResult, SamplingConfig, run_sampled

__all__ = ["FRONTIER_RATES", "FRONTIER_SCHEMES", "sampling_frontier"]

#: Swept sampling rates, full run first (it doubles as the reference).
FRONTIER_RATES: Tuple[float, ...] = (1.0, 0.5, 0.25, 0.1)

#: Scheme factories swept by the frontier (paper schemes that are legal
#: below rate 1.0 — speculation carries its own rollback and is excluded).
FRONTIER_SCHEMES: Dict[str, object] = {
    "cc": lambda: SlackConfig(bound=0),
    "slack16": lambda: SlackConfig(bound=16),
    "adaptive": lambda: AdaptiveConfig(target_rate=1e-3, adjust_period=250),
}


def _frontier_spec(
    scheme: SchemeConfig, benchmark: str, cores: int, scale: float, seed: int
) -> RunSpec:
    return RunSpec(
        benchmark=benchmark,
        scheme=scheme,
        scale=scale,
        checkpoint=None,
        detection=True,
        seed=seed,
        num_threads=cores,
        target=paper_target_config(num_cores=cores),
        host=paper_host_config(),
    )


def _row(
    scheme: str,
    rate: float,
    result: SampledRunResult,
    reference: SampledRunResult,
    wall_s: float,
    reference_wall_s: float,
) -> Dict[str, object]:
    ref = reference.report
    est = result.estimate
    cpi_err = (
        abs(est.cpi.mean - ref.cpi) / ref.cpi if ref.cpi else 0.0
    )
    vio_err = (
        abs(est.violation_rate.mean - ref.violation_rate) / ref.violation_rate
        if ref.violation_rate
        else abs(est.violation_rate.mean)
    )
    return {
        "scheme": scheme,
        "rate": rate,
        "intervals": est.num_intervals,
        "measured": est.num_measured,
        "phases": est.num_phases,
        "restored": result.stats.restored_intervals,
        "cpi": est.cpi.to_dict(),
        "cpi_full": ref.cpi,
        "cpi_error": cpi_err,
        "cpi_ci_covers": est.cpi.covers(ref.cpi),
        "violation_rate": est.violation_rate.to_dict(),
        "violation_rate_full": ref.violation_rate,
        "violation_rate_error": vio_err,
        "violation_rate_ci_covers": est.violation_rate.covers(ref.violation_rate),
        "modeled_speedup": result.stats.estimated_speedup,
        "predicted_speedup": result.stats.predicted_speedup,
        "wall_s": wall_s,
        "wall_speedup": (reference_wall_s / wall_s) if wall_s > 0 else 0.0,
        "digest": result.digest,
    }


def sampling_frontier(
    runner=None,
    benchmark: str = "fft",
    cores: int = 8,
    scale: float = 1.0,
    seed: int = 12345,
    sample_seed: int = 12345,
    rates: Sequence[float] = FRONTIER_RATES,
    interval: int = 1000,
    warmup: int = 100,
    output: Optional[str] = "BENCH_sampling.json",
) -> ExperimentResult:
    """Sweep schemes x sampling rates; write ``BENCH_sampling.json``.

    ``runner`` is accepted (and ignored) so the function slots into the
    CLI's experiment registry unchanged — sampled runs drive the
    scheduler directly and cannot go through the report cache.
    """
    records: List[Dict[str, object]] = []
    rows: List[tuple] = []
    for scheme_name, factory in FRONTIER_SCHEMES.items():
        reference: Optional[SampledRunResult] = None
        reference_wall = 0.0
        for rate in rates:
            config = SamplingConfig(
                rate=rate, interval=interval, warmup=warmup, seed=sample_seed
            )
            spec = _frontier_spec(factory(), benchmark, cores, scale, seed)
            started = time.perf_counter()
            result = run_sampled(spec, config)
            wall = time.perf_counter() - started
            if reference is None:
                if rate != 1.0:
                    raise ValueError(
                        "the first swept rate must be 1.0 — it is the "
                        f"reference run (got {rate})"
                    )
                reference = result
                reference_wall = wall
            record = _row(scheme_name, rate, result, reference, wall, reference_wall)
            records.append(record)
            est = result.estimate
            rows.append(
                (
                    scheme_name,
                    f"{rate:g}",
                    est.num_intervals,
                    est.num_measured,
                    est.num_phases,
                    f"{est.cpi.mean:.4f}±{est.cpi.half_width:.4f}"
                    if est.cpi.half_width != float("inf")
                    else f"{est.cpi.mean:.4f}±inf",
                    f"{record['cpi_error']:.2%}",
                    "y" if record["cpi_ci_covers"] else "n",
                    f"{record['violation_rate_error']:.2%}",
                    "y" if record["violation_rate_ci_covers"] else "n",
                    f"{result.stats.estimated_speedup:.2f}x",
                    f"{record['wall_speedup']:.2f}x",
                )
            )

    if output:
        doc = {
            "schema": 1,
            "benchmark": benchmark,
            "cores": cores,
            "scale": scale,
            "seed": seed,
            "sample_seed": sample_seed,
            "interval": interval,
            "warmup": warmup,
            "host": host_fingerprint(),
            "results": records,
        }
        pathlib.Path(output).write_text(json.dumps(doc, indent=2) + "\n")

    return ExperimentResult(
        name="frontier",
        title=(
            f"Sampling error-vs-speedup frontier "
            f"({benchmark}, {cores} cores, scale {scale:g})"
        ),
        headers=(
            "scheme", "rate", "ints", "meas", "phases", "cpi est",
            "cpi err", "ci", "vio err", "ci", "model spd", "wall spd",
        ),
        rows=rows,
        notes=(
            "Errors are vs each scheme's own rate-1.0 run (digest-identical "
            "to the unsampled run). 'ci' marks whether the 95% interval "
            "covers the full-run value; modeled speedup is extrapolated "
            "detailed host time over the sampled run's modeled host time."
        ),
    )
