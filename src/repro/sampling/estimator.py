"""Statistical estimation over sampled interval records.

The engine (``repro.sampling.engine``) emits one :class:`IntervalSample`
per interval — measured (detailed) intervals carry trusted counters,
fast-forwarded ones contribute only their phase membership.  This module
turns that stream into the run-level estimates with confidence
intervals, and is deliberately pure over plain records: the hypothesis
property tests exercise it without ever building a simulation.

Estimator protocol (stratified ratio estimation):

Every headline metric is a ratio of counter totals — CPI is
core-cycles/instruction, violation rate is violations/cycle, slowdown is
modeled host-ns/target-cycle.  With phases as strata of weight
``w_p = N_p / N`` (``N_p`` counts *all* intervals assigned to phase
``p``, measured or skipped) the estimate is the **ratio of stratified
means**::

    est = sum_p w_p * mean(num_p) / sum_p w_p * mean(den_p)

where the means run over the *measured* intervals of each phase.  At
sampling rate 1.0 every interval is measured, the stratified means
collapse to totals/N, and the estimate equals the full run's ratio
exactly — no estimator bias at the degenerate rate, which is what makes
the rate-1.0 digest-identity contract meaningful.

The confidence interval treats the per-interval ratios as the dispersion
sample: ``Var(est) = sum_p w_p^2 * s_p^2 / n_p`` with Welch–Satterthwaite
degrees of freedom across strata.  Phases measured exactly once have no
within-phase variance; they borrow the pooled variance of the multi-
sample phases (and the pooled degrees of freedom), and if *every* phase
is a singleton the half-width is infinite — an honest "one sample tells
you nothing about spread".
"""

from __future__ import annotations

import math
from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.stats.aggregate import ConfidenceInterval, t_critical, variance

__all__ = ["IntervalSample", "SampledEstimate", "estimate"]


class IntervalSample(NamedTuple):
    """One interval's contribution to the estimator.

    ``measured`` intervals carry counters from detailed simulation;
    unmeasured (fast-forwarded) intervals contribute membership weight
    only — their counters describe the unbounded-slack traversal and
    must never be averaged with detailed ones.  ``restored`` marks a
    measured interval that was first fast-forwarded, then rolled back to
    the entry snapshot for detailed re-execution.
    """

    index: int
    phase: int
    measured: bool
    restored: bool
    cycles: int
    core_cycles: int
    instructions: int
    violations: int
    host_ns: float

    def to_dict(self) -> dict:
        return self._asdict()


class SampledEstimate(NamedTuple):
    """Run-level estimates extrapolated from the measured intervals."""

    cpi: ConfidenceInterval
    violation_rate: ConfidenceInterval
    slowdown_ns_per_cycle: ConfidenceInterval
    num_intervals: int
    num_measured: int
    num_phases: int
    total_cycles: int
    #: Host-ns a fully detailed run would have cost, extrapolated from
    #: the measured intervals' host cost per phase.
    estimated_detailed_host_ns: float

    def to_dict(self) -> dict:
        return {
            "cpi": self.cpi.to_dict(),
            "violation_rate": self.violation_rate.to_dict(),
            "slowdown_ns_per_cycle": self.slowdown_ns_per_cycle.to_dict(),
            "num_intervals": self.num_intervals,
            "num_measured": self.num_measured,
            "num_phases": self.num_phases,
            "total_cycles": self.total_cycles,
            "estimated_detailed_host_ns": self.estimated_detailed_host_ns,
        }


def _stratified_ratio(
    weights: Dict[int, float],
    numerators: Dict[int, List[float]],
    denominators: Dict[int, List[float]],
    confidence: float,
) -> ConfidenceInterval:
    """Ratio-of-stratified-means estimate with a Welch-combined CI."""
    num_total = 0.0
    den_total = 0.0
    ratios: Dict[int, List[float]] = {}
    n_measured = 0
    for phase, w in weights.items():
        nums = numerators[phase]
        dens = denominators[phase]
        n_measured += len(nums)
        num_total += w * (sum(nums) / len(nums))
        den_total += w * (sum(dens) / len(dens))
        ratios[phase] = [
            (n / d) if d != 0.0 else 0.0 for n, d in zip(nums, dens)
        ]
    est = num_total / den_total if den_total != 0.0 else 0.0

    # Within-phase dispersion of the per-interval ratios; singleton
    # phases borrow the pooled variance of the multi-sample phases.
    pooled_num = 0.0
    pooled_df = 0
    per_phase_var: Dict[int, float] = {}
    for phase, rs in ratios.items():
        if len(rs) >= 2:
            s2 = variance(rs)
            per_phase_var[phase] = s2
            pooled_num += (len(rs) - 1) * s2
            pooled_df += len(rs) - 1
    if pooled_df == 0:
        # Every phase measured exactly once: no variance information.
        return ConfidenceInterval(
            mean=est, half_width=math.inf, n=n_measured, confidence=confidence
        )
    pooled_var = pooled_num / pooled_df

    var_est = 0.0
    welch_den = 0.0
    for phase, w in weights.items():
        rs = ratios[phase]
        n_p = len(rs)
        s2 = per_phase_var.get(phase, pooled_var)
        df_p = (n_p - 1) if n_p >= 2 else pooled_df
        term = (w * w) * s2 / n_p
        var_est += term
        if term > 0.0:
            welch_den += (term * term) / df_p
    if var_est <= 0.0:
        half_width = 0.0
    else:
        df = (var_est * var_est) / welch_den if welch_den > 0.0 else float(pooled_df)
        half_width = t_critical(max(df, 1.0), confidence) * math.sqrt(var_est)
    return ConfidenceInterval(
        mean=est, half_width=half_width, n=n_measured, confidence=confidence
    )


def estimate(
    samples: Sequence[IntervalSample], confidence: float = 0.95
) -> SampledEstimate:
    """Extrapolate run-level metrics from the interval sample stream.

    Raises ``ValueError`` on an empty stream or on a phase with zero
    measured intervals — the engine's live-sampling policy guarantees
    every phase is measured at least once, so a violation here means the
    caller fabricated an inconsistent stream.
    """
    if not samples:
        raise ValueError("cannot estimate from zero intervals")
    membership: Dict[int, int] = {}
    measured: Dict[int, List[IntervalSample]] = {}
    for s in samples:
        membership[s.phase] = membership.get(s.phase, 0) + 1
        if s.measured:
            measured.setdefault(s.phase, []).append(s)
    for phase in membership:
        if phase not in measured:
            raise ValueError(
                f"phase {phase} has intervals but no detailed measurements"
            )

    total = len(samples)
    weights = {p: n / total for p, n in membership.items()}

    def columns(num_of: str, den_of: str) -> Tuple[Dict[int, List[float]], Dict[int, List[float]]]:
        nums = {
            p: [float(getattr(s, num_of)) for s in ss] for p, ss in measured.items()
        }
        dens = {
            p: [float(getattr(s, den_of)) for s in ss] for p, ss in measured.items()
        }
        return nums, dens

    cpi_n, cpi_d = columns("core_cycles", "instructions")
    vio_n, vio_d = columns("violations", "cycles")
    slow_n, slow_d = columns("host_ns", "cycles")

    # Extrapolated detailed host time: each phase's mean measured host
    # cost, scaled by how many intervals the phase covers.
    detailed_ns = 0.0
    for phase, ss in measured.items():
        mean_ns = sum(s.host_ns for s in ss) / len(ss)
        detailed_ns += mean_ns * membership[phase]

    return SampledEstimate(
        cpi=_stratified_ratio(weights, cpi_n, cpi_d, confidence),
        violation_rate=_stratified_ratio(weights, vio_n, vio_d, confidence),
        slowdown_ns_per_cycle=_stratified_ratio(weights, slow_n, slow_d, confidence),
        num_intervals=total,
        num_measured=sum(len(ss) for ss in measured.values()),
        num_phases=len(membership),
        total_cycles=sum(s.cycles for s in samples),
        estimated_detailed_host_ns=detailed_ns,
    )
