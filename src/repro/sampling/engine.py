"""The sampled-execution engine: interval cuts, fast-forward, warmup.

One simulation is driven through the same resumable cut seam the
time-parallel harness uses (``Scheduler.run(stop_when=...)``), one
*interval* at a time.  At each interval entry the phase detector
predicts whether the upcoming interval repeats a well-sampled phase:

- **measure** — run the interval under the configured scheme, diff the
  engine counters (:class:`~repro.telemetry.features.CounterSnapshot`),
  and feed the full feature vector to the detector;
- **fast-forward** — take a copy-on-write snapshot, swap the scheme for
  unbounded slack (``FixedSlackPolicy(SlackConfig(bound=None))`` — no
  windows, no barriers, maximum host-side concurrency), traverse the
  interval cheaply, swap back, and classify the traversal's *partial*
  feature vector (violation dimension masked — it is scheme-sensitive).
  If the traversal matches a well-sampled phase the skip **commits**; if
  it looks new or under-sampled the engine **restores** the entry
  snapshot — the standard rollback mechanics of
  ``repro.core.speculative`` — and measures the interval in detail
  instead.  No phase is ever extrapolated from zero measurements.

A detailed interval that follows a committed fast-forward starts from a
trajectory the fast traversal distorted (the interleaving under
unbounded slack is not the scheme's), so its first ``warmup`` cycles are
run in detail but excluded from the measurement window — the functional-
warmup discipline of SMARTS-style samplers, applied to slack distortion
rather than cache cold-start.

Cost honesty: snapshots and restores are charged to the modeled host
clock through the same ``pause_all_contexts``/``wake_all`` seam and the
same :func:`~repro.core.checkpoint.checkpoint_cost_ns` model as the
paper's speculation controller, and they count into the report's
``checkpoints``/``rollbacks`` fields.  The sampled report's
``sim_time_s`` therefore includes every overhead the sampling scheme
introduces.

Determinism: the trajectory is a pure function of the run spec and the
sample seed (the detector's RNG drives the only stochastic choice), so
the same ``(spec, seed)`` reproduces a byte-identical report and
estimate.  At rate 1.0 ``should_measure`` short-circuits before drawing,
no snapshot is ever taken and no scheme is ever swapped — the engine
degenerates to a pure cut loop and the report digest is byte-identical
to the unsampled run's for every scheme kind.
"""

from __future__ import annotations

import dataclasses
import gc
import time
from typing import List, Optional, Tuple

from repro.config import SlackConfig, SpeculativeConfig
from repro.core.analytical import SpeculativeModelInputs, speculative_time
from repro.core.checkpoint import (
    checkpoint_cost_ns,
    restore_snapshot,
    take_snapshot,
)
from repro.core.epochs import make_stop_predicate
from repro.core.report import SimulationReport
from repro.core.scheduler import Scheduler
from repro.core.schemes.fixed import FixedSlackPolicy
from repro.core.simulation import DEFAULT_MAX_TARGET_CYCLES, Simulation
from repro.errors import ConfigError, SimulationError
from repro.harness.cache import RunSpec
from repro.sampling.estimator import IntervalSample, SampledEstimate, estimate
from repro.sampling.phases import (
    DEFAULT_DISTANCE_THRESHOLD,
    DEFAULT_SMOOTHING,
    PhaseDetector,
)
from repro.telemetry import TelemetrySession
from repro.telemetry.features import CounterSnapshot
from repro.util.rng import SplitMix64
from repro.workloads import make_workload

__all__ = ["SampledRunResult", "SamplingConfig", "SamplingStats", "run_sampled"]

#: Runaway guard (intervals, not cycles) — the cut loop must terminate
#: even if a workload change makes intervals degenerate.
_MAX_INTERVALS = 100_000


@dataclasses.dataclass(frozen=True)
class SamplingConfig:
    """Parameters of one sampled run.

    ``rate`` is the per-interval probability that a well-sampled phase is
    measured anyway (1.0 = measure everything, the degenerate mode whose
    digest must match the unsampled run).  ``interval`` is the cut stride
    in target cycles; ``warmup`` detailed cycles at the head of a
    measured interval that follows a fast-forward are excluded from the
    measurement window.
    """

    rate: float = 0.25
    interval: int = 1000
    warmup: int = 100
    seed: int = 12345
    min_phase_samples: int = 2
    confidence: float = 0.95
    distance_threshold: float = DEFAULT_DISTANCE_THRESHOLD
    smoothing: float = DEFAULT_SMOOTHING

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise ConfigError(f"sampling rate must be in (0, 1], got {self.rate}")
        if self.interval < 2:
            raise ConfigError(f"sampling interval must be >= 2, got {self.interval}")
        if not 0 <= self.warmup < self.interval:
            raise ConfigError(
                f"warmup must be in [0, interval), got {self.warmup} "
                f"against interval {self.interval}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ConfigError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.min_phase_samples < 1:
            raise ConfigError(
                f"min_phase_samples must be >= 1, got {self.min_phase_samples}"
            )


@dataclasses.dataclass
class SamplingStats:
    """Bookkeeping of one sampled run (counts + modeled/wall times)."""

    intervals: int = 0
    measured_intervals: int = 0
    fast_intervals: int = 0  # committed skips
    restored_intervals: int = 0  # fast traversals rolled back and measured
    warmup_windows: int = 0
    snapshots: int = 0
    phases: int = 0
    #: Modeled host-ns of first attempts only (the no-restore plan) —
    #: ``T_cpt`` in the section-5.2 analytical model's sampling reading.
    planned_host_ns: float = 0.0
    actual_host_ns: float = 0.0
    estimated_detailed_host_ns: float = 0.0
    #: Section-5.2 model evaluated with F = restored fraction.
    predicted_host_ns: float = 0.0
    predicted_speedup: float = 0.0
    #: Extrapolated detailed time over actual sampled time.
    estimated_speedup: float = 0.0
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class SampledRunResult:
    """Everything one sampled run produces."""

    report: SimulationReport
    digest: str
    estimate: SampledEstimate
    stats: SamplingStats
    samples: Tuple[IntervalSample, ...]

    def to_dict(self) -> dict:
        return {
            "report": self.report.to_dict(),
            "digest": self.digest,
            "estimate": self.estimate.to_dict(),
            "stats": self.stats.to_dict(),
            "samples": [s.to_dict() for s in self.samples],
        }


# --------------------------------------------------------------------- #


def _build_machine(
    spec: RunSpec, telemetry: Optional[TelemetrySession]
) -> Tuple[Simulation, Scheduler]:
    """Construct the sim + scheduler pair the sampling loop drives
    (mirrors ``repro.harness.timepar._build_machine``)."""
    workload = make_workload(
        spec.benchmark, num_threads=spec.num_threads, scale=spec.scale
    )
    sim = Simulation(
        workload,
        scheme=spec.scheme,
        target=spec.target,
        host=spec.host,
        checkpoint=spec.checkpoint,
        detection=spec.detection,
        seed=spec.seed,
        telemetry=telemetry,
    )
    sim._ran = True  # the sampling loop owns the scheduler lifecycle
    return sim, Scheduler(sim, sim.host)


def _completed(sim: Simulation) -> bool:
    """Workload done and every queue drained (the scheduler loop's own
    termination condition) — distinguishes 'finished' from 'cut'."""
    state = sim.state
    if not state.all_finished:
        return False
    return state.manager.quiescent(state) and all(not cs.inq for cs in state.cores)


def _charge(scheduler: Scheduler, cost_ns: float) -> None:
    """Charge a sampling action to the modeled host clock (all contexts
    pause for the action, exactly like checkpoint/rollback charging)."""
    resume = scheduler.pause_all_contexts(cost_ns)
    scheduler.wake_all(resume)


def run_sampled(
    spec: RunSpec,
    config: SamplingConfig,
    telemetry: Optional[TelemetrySession] = None,
) -> SampledRunResult:
    """Execute ``spec`` under live statistical sampling.

    Sampling below rate 1.0 owns the snapshot/rollback machinery, so it
    refuses specs that carry their own (speculative schemes, periodic
    checkpointing) — at rate 1.0 those run unmodified through the pure
    cut loop.
    """
    if config.rate < 1.0:
        if isinstance(spec.scheme, SpeculativeConfig):
            raise ConfigError(
                "sampled execution below rate 1.0 owns rollback; speculative "
                "schemes carry their own — run them at --sample-rate 1.0 or "
                "unsampled"
            )
        if spec.checkpoint is not None:
            raise ConfigError(
                "sampled execution below rate 1.0 owns snapshots; drop the "
                "checkpoint config or use --sample-rate 1.0"
            )

    wall_start = time.perf_counter()  # repro: noqa[RPR001] sampling-wall telemetry; never feeds the digest
    sim, scheduler = _build_machine(spec, telemetry)
    if sim.controller is not None:
        sim.controller.on_run_start(scheduler)
    detector = PhaseDetector(
        rng=SplitMix64(config.seed),
        distance_threshold=config.distance_threshold,
        smoothing=config.smoothing,
        min_samples=config.min_phase_samples,
    )
    stats = SamplingStats()
    samples: List[IntervalSample] = []
    cost_model = sim.host.cost
    fast_policy = FixedSlackPolicy(SlackConfig(bound=None))
    last_phase = -1  # "no phase yet": forces the first interval detailed
    needs_warmup = False
    host_stats = scheduler.stats

    def capture() -> CounterSnapshot:
        return CounterSnapshot.capture(sim.state, scheduler.simulation_time_ns())

    def run_to(boundary: int):
        return scheduler.run(
            DEFAULT_MAX_TARGET_CYCLES, make_stop_predicate(sim, boundary)
        )

    # Same GC discipline as Simulation.run: heavy allocation, almost no
    # cyclic garbage.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        while not _completed(sim):
            if stats.intervals >= _MAX_INTERVALS:
                raise SimulationError(
                    f"sampling runaway: {_MAX_INTERVALS} intervals without "
                    f"completion (interval={config.interval})"
                )
            index = stats.intervals
            stats.intervals += 1
            start_cycle = sim.state.global_time()
            boundary = start_cycle + config.interval

            if detector.should_measure(last_phase, config.rate):
                last_phase = _measure_interval(
                    sim, scheduler, detector, config, samples, stats,
                    index, boundary, needs_warmup, restored=False,
                    capture=capture, run_to=run_to,
                )
                host_stats = scheduler.stats
                needs_warmup = False
                continue

            # ---- fast-forward attempt -------------------------------- #
            entry_ns = scheduler.simulation_time_ns()
            snap = take_snapshot(sim.state, start_cycle, entry_ns)
            snap_cost = checkpoint_cost_ns(cost_model, snap.pages)
            scheduler.stats.checkpoints += 1
            scheduler.stats.checkpoint_cost_ns += snap_cost
            _charge(scheduler, snap_cost)
            stats.snapshots += 1

            state = sim.state
            saved_policy = state.scheme
            state.scheme = fast_policy
            state.manager._limits_stale = True  # repopulate the limit bank
            entry = capture()
            host_stats = run_to(boundary)
            exit_snap = capture()
            state.scheme = saved_policy
            state.manager._limits_stale = True
            # Fast-mode violations are not the scheme's; keep them out of
            # the adaptive controller's next control window.
            state.manager.detector.reset_window()

            feats = exit_snap.delta(entry)
            stats.planned_host_ns += (
                scheduler.simulation_time_ns() - entry_ns
            )
            phase, is_new = detector.classify(feats.vector(), partial=True)
            if not is_new and not detector.needs_samples(phase):
                # Commit the skip: the interval stays fast-forwarded.
                stats.fast_intervals += 1
                samples.append(
                    IntervalSample(
                        index=index,
                        phase=phase,
                        measured=False,
                        restored=False,
                        cycles=feats.cycles,
                        core_cycles=feats.core_cycles,
                        instructions=feats.instructions,
                        violations=feats.violations,
                        host_ns=feats.host_ns,
                    )
                )
                last_phase = phase
                needs_warmup = True
                continue

            # Unknown or under-sampled: roll back and measure in detail.
            wasted = sim.state.global_time() - start_cycle
            sim.state = restore_snapshot(snap)
            scheduler.stats.rollbacks += 1
            scheduler.stats.wasted_target_cycles += wasted
            scheduler.stats.rollback_cost_ns += cost_model.rollback_ns
            _charge(scheduler, cost_model.rollback_ns)
            stats.restored_intervals += 1
            last_phase = _measure_interval(
                sim, scheduler, detector, config, samples, stats,
                index, boundary, needs_warmup, restored=True,
                capture=capture, run_to=run_to,
            )
            host_stats = scheduler.stats
            needs_warmup = False
    finally:
        if gc_was_enabled:
            gc.enable()

    report = sim._build_report(scheduler, host_stats)
    est = estimate(samples, confidence=config.confidence)
    stats.phases = detector.num_phases
    stats.actual_host_ns = scheduler.simulation_time_ns()
    stats.estimated_detailed_host_ns = est.estimated_detailed_host_ns
    if stats.actual_host_ns > 0.0:
        stats.estimated_speedup = est.estimated_detailed_host_ns / stats.actual_host_ns
    if stats.planned_host_ns > 0.0 and est.num_intervals > 0:
        # Section-5.2 model, sampling reading: a restored interval is a
        # "violating" one — its fast traversal is wasted (D_r = I) and it
        # re-executes at detailed cost (the F * T_cc replay term).
        inputs = SpeculativeModelInputs(
            t_cc=est.estimated_detailed_host_ns,
            t_cpt=stats.planned_host_ns,
            fraction_violating=stats.restored_intervals / est.num_intervals,
            rollback_distance=float(config.interval),
            interval=float(config.interval),
        )
        stats.predicted_host_ns = speculative_time(inputs)
        if stats.predicted_host_ns > 0.0:
            stats.predicted_speedup = (
                est.estimated_detailed_host_ns / stats.predicted_host_ns
            )
    stats.wall_s = time.perf_counter() - wall_start  # repro: noqa[RPR001] sampling-wall telemetry; never feeds the digest
    return SampledRunResult(
        report=report,
        digest=report.digest(),
        estimate=est,
        stats=stats,
        samples=tuple(samples),
    )


def _measure_interval(
    sim: Simulation,
    scheduler: Scheduler,
    detector: PhaseDetector,
    config: SamplingConfig,
    samples: List[IntervalSample],
    stats: SamplingStats,
    index: int,
    boundary: int,
    needs_warmup: bool,
    restored: bool,
    capture,
    run_to,
) -> int:
    """Run one interval in detail; record its sample; return its phase."""
    planned_start_ns = scheduler.simulation_time_ns()
    if needs_warmup and config.warmup > 0 and not _completed(sim):
        # The preceding fast-forward distorted the trajectory; run the
        # window head in detail but keep it out of the measurement.
        stats.warmup_windows += 1
        run_to(sim.state.global_time() + config.warmup)
    entry = capture()
    if not _completed(sim):
        run_to(boundary)
    exit_snap = capture()
    if not restored:
        # First-attempt cost only: a restored interval's plan was its
        # fast traversal, already accounted by the caller.
        stats.planned_host_ns += scheduler.simulation_time_ns() - planned_start_ns
    feats = exit_snap.delta(entry)
    if feats.cycles <= 0:
        # Completion landed exactly on the previous cut; nothing to
        # measure and no phase transition.
        return -1
    phase, _ = detector.observe(feats.vector())
    stats.measured_intervals += 1
    samples.append(
        IntervalSample(
            index=index,
            phase=phase,
            measured=True,
            restored=restored,
            cycles=feats.cycles,
            core_cycles=feats.core_cycles,
            instructions=feats.instructions,
            violations=feats.violations,
            host_ns=feats.host_ns,
        )
    )
    return phase
