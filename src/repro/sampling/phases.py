"""Online phase detection: incremental clustering of interval features.

Pac-Sim's lesson (PAPERS.md) is that multi-threaded sampling must detect
phases *live*: there is no offline profiling pass, so the detector sees
one feature vector per interval, as it completes, and must decide on the
spot whether the interval belongs to a known phase or opens a new one.

The clustering is leader-follower (a.k.a. sequential leader): the first
vector founds phase 0; every later vector joins the nearest centroid
within ``distance_threshold`` (Chebyshev distance over the normalized
feature box) or founds a new phase.  Centroids track their members with
an exponential moving average so slow drift follows the workload while
the threshold still splits genuine phase changes.  Classification is
deterministic; the injectable seeded RNG drives the *sampling policy*
(:meth:`PhaseDetector.should_measure`), which is the stochastic half of
the detector — phase-stratified Bernoulli sampling at the configured
rate, reproducible from the sample seed.

Fast-forwarded intervals are classified with ``partial=True``: the
violation dimension (dimension 0, scheme-sensitive — unbounded slack
inflates it) is masked out of the distance, and partial vectors never
found phases or move centroids.  A partial vector that matches nothing
reports ``is_new=True``, which the engine treats as "restore the entry
snapshot and measure this interval in detail" — the live-sampling
guarantee that no phase is ever extrapolated from zero measurements.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.util.rng import SplitMix64

__all__ = ["PhaseDetector"]

#: Default join radius in the normalized feature box.  Interval features
#: are rates in [0, 1); two intervals whose every (trusted) dimension is
#: within this radius exercise the engine the same way.
DEFAULT_DISTANCE_THRESHOLD = 0.10

#: Default EMA weight of a new member in its centroid.
DEFAULT_SMOOTHING = 0.25


class PhaseDetector:
    """Incremental leader-follower clustering plus the sampling policy."""

    def __init__(
        self,
        rng: SplitMix64,
        distance_threshold: float = DEFAULT_DISTANCE_THRESHOLD,
        smoothing: float = DEFAULT_SMOOTHING,
        min_samples: int = 2,
    ) -> None:
        if distance_threshold <= 0.0:
            raise ValueError(
                f"distance threshold must be positive, got {distance_threshold}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.rng = rng
        self.distance_threshold = distance_threshold
        self.smoothing = smoothing
        #: Detailed measurements required before a phase may be skipped.
        self.min_samples = min_samples
        self.centroids: List[List[float]] = []
        #: Intervals assigned to each phase (measured or skipped).
        self.members: List[int] = []
        #: Detailed measurements folded into each phase.
        self.samples: List[int] = []

    # ------------------------------------------------------------------ #

    @property
    def num_phases(self) -> int:
        return len(self.centroids)

    def _nearest(
        self, vec: Sequence[float], partial: bool
    ) -> Tuple[Optional[int], float]:
        """Nearest centroid index and its distance (Chebyshev; partial
        vectors skip the scheme-sensitive dimension 0)."""
        best: Optional[int] = None
        best_dist = 0.0
        start = 1 if partial else 0
        for idx, centroid in enumerate(self.centroids):
            dist = 0.0
            for d in range(start, len(centroid)):
                delta = vec[d] - centroid[d]
                if delta < 0.0:
                    delta = -delta
                if delta > dist:
                    dist = delta
            if best is None or dist < best_dist:
                best = idx
                best_dist = dist
        return best, best_dist

    def classify(
        self, vec: Sequence[float], partial: bool = False
    ) -> Tuple[int, bool]:
        """Assign ``vec`` to a phase; return ``(phase_id, is_new)``.

        A full vector founds a new phase when nothing is within the
        threshold; a partial vector (fast-forwarded interval) never
        founds or moves anything — it returns ``(best_or_-1, True)`` and
        leaves the decision to the engine.  Membership counts advance
        for every assigned interval; only :meth:`observe` advances the
        measured-sample counts.
        """
        nearest, dist = self._nearest(vec, partial)
        if nearest is not None and dist <= self.distance_threshold:
            self.members[nearest] += 1
            if not partial:
                # EMA pull toward the new member (trusted features only).
                alpha = self.smoothing
                centroid = self.centroids[nearest]
                for d in range(len(centroid)):
                    centroid[d] += alpha * (vec[d] - centroid[d])
            return nearest, False
        if partial:
            return (nearest if nearest is not None else -1), True
        self.centroids.append(list(vec))
        self.members.append(1)
        self.samples.append(0)
        return len(self.centroids) - 1, True

    def observe(self, vec: Sequence[float]) -> Tuple[int, bool]:
        """Classify a *measured* interval's full vector and count the
        detailed sample toward its phase."""
        phase, is_new = self.classify(vec, partial=False)
        self.samples[phase] += 1
        return phase, is_new

    # ------------------------------------------------------------------ #
    # Sampling policy (the seeded-RNG half)
    # ------------------------------------------------------------------ #

    def needs_samples(self, phase: int) -> bool:
        """True while a phase has fewer detailed measurements than
        ``min_samples`` — such phases must be measured, not skipped."""
        if phase < 0 or phase >= len(self.samples):
            return True
        return self.samples[phase] < self.min_samples

    def should_measure(self, phase: int, rate: float) -> bool:
        """Decide whether the *next* interval (predicted to repeat
        ``phase``) runs in detail.

        Under-sampled phases are always measured; beyond that the policy
        is phase-stratified Bernoulli sampling at ``rate``, drawn from
        the injected seeded RNG — the draw sequence, and therefore the
        entire sampled trajectory, is a pure function of the sample seed.
        """
        if rate >= 1.0:
            return True
        if self.needs_samples(phase):
            return True
        return self.rng.next_float() < rate
