"""Open-row DRAM model behind the shared L2 (optional extension).

The paper models L2 misses as a flat 100-clock latency; that remains the
default.  For studies of how memory-system detail interacts with slack
(more simulator state to misorder -> more timing sensitivity), an optional
open-row DRAM can replace the flat latency: banks keep their last-opened
row, a row hit pays column access only, a row miss pays
precharge+activate+column, and bank occupancy follows the same monotone
arrival-order semantics as the snooping bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.util import is_power_of_two


@dataclass(frozen=True)
class DramConfig:
    """Open-row DRAM timing (latencies in target cycles)."""

    num_banks: int = 4
    row_bytes: int = 2048
    row_hit_latency: int = 60  # column access on an open row
    row_miss_latency: int = 140  # precharge + activate + column
    bank_busy_cycles: int = 4

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ConfigError("num_banks must be positive")
        if not is_power_of_two(self.row_bytes):
            raise ConfigError("row_bytes must be a power of two")
        if not (0 < self.row_hit_latency <= self.row_miss_latency):
            raise ConfigError("need 0 < row_hit_latency <= row_miss_latency")
        if self.bank_busy_cycles <= 0:
            raise ConfigError("bank_busy_cycles must be positive")


class DramModel:
    """Per-bank open-row state plus occupancy."""

    def __init__(self, config: DramConfig, line_size: int) -> None:
        self.config = config
        self._lines_per_row = max(1, config.row_bytes // line_size)
        self._open_row = [-1] * config.num_banks
        self._bank_free_at = [0] * config.num_banks
        # Statistics
        self.accesses = 0
        self.row_hits = 0
        self.row_misses = 0
        self.bank_conflict_cycles = 0

    def _locate(self, line_addr: int):
        row = line_addr // self._lines_per_row
        bank = row % self.config.num_banks
        return bank, row

    def access(self, line_addr: int, at: int = 0) -> int:
        """Fetch one line starting at target time ``at``; return latency."""
        self.accesses += 1
        bank, row = self._locate(line_addr)
        start = max(at, self._bank_free_at[bank])
        wait = start - at
        self.bank_conflict_cycles += wait
        if self._open_row[bank] == row:
            self.row_hits += 1
            latency = self.config.row_hit_latency
        else:
            self.row_misses += 1
            latency = self.config.row_miss_latency
            self._open_row[bank] = row
        self._bank_free_at[bank] = start + self.config.bank_busy_cycles
        return wait + latency

    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row."""
        return self.row_hits / self.accesses if self.accesses else 0.0
