"""MESI coherence states and bus transaction kinds.

The protocol is the textbook MESI over a split request/response snooping
bus: read misses issue GETS, write misses GETX, stores to Shared lines
UPGR, and dirty evictions WB.  The manager resolves each transaction
against the global cache status map and the L2 (paper section 2/3).
"""

from __future__ import annotations

from enum import IntEnum

from repro.errors import ProtocolError


class MesiState(IntEnum):
    """Per-line MESI state."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3

    @property
    def readable(self) -> bool:
        """True if a load hits in this state."""
        return self != MesiState.INVALID

    @property
    def writable(self) -> bool:
        """True if a store hits in this state without a bus transaction."""
        return self in (MesiState.EXCLUSIVE, MesiState.MODIFIED)


class BusOpKind(IntEnum):
    """Snooping-bus transaction kinds."""

    GETS = 0  #: read miss - request line in Shared/Exclusive
    GETX = 1  #: write miss - request line in Modified, invalidate others
    UPGR = 2  #: store to a Shared line - invalidate others, no data
    WB = 3  #: writeback of a Modified line on eviction


def store_transition(state: MesiState) -> MesiState:
    """L1 state after a store completes locally."""
    if state == MesiState.INVALID:
        raise ProtocolError("store cannot complete on an INVALID line")
    return MesiState.MODIFIED


def fill_state_for(kind: BusOpKind, others_have_copy: bool) -> MesiState:
    """L1 fill state granted by the manager for a completed transaction.

    GETS fills Exclusive when no other cache holds the line (the standard
    MESI E-state optimization), Shared otherwise; GETX and UPGR always
    grant Modified.
    """
    if kind == BusOpKind.GETS:
        return MesiState.SHARED if others_have_copy else MesiState.EXCLUSIVE
    if kind in (BusOpKind.GETX, BusOpKind.UPGR):
        return MesiState.MODIFIED
    raise ProtocolError(f"{kind.name} does not fill a line")
