"""Generic set-associative cache array with LRU replacement.

Used for both the private L1s and the shared L2.  The array stores MESI
states but no data values: the simulator is timing-directed (workloads are
synthetic operation streams, so there are no functional values to track —
and the paper notes workload-state violations cannot occur anyway because
synchronization executes inside the simulator).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import CacheConfig
from repro.memory.address import AddressMapper
from repro.memory.mesi import MesiState


class CacheLine:
    """One cache line: tag, MESI state, LRU stamp."""

    __slots__ = ("tag", "state", "lru")

    def __init__(self) -> None:
        self.tag = -1
        self.state = MesiState.INVALID
        self.lru = 0

    @property
    def valid(self) -> bool:
        return self.state != MesiState.INVALID


class CacheArray:
    """Set-associative tag/state array with true-LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.mapper = AddressMapper(config)
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(config.associativity)]
            for _ in range(config.num_sets)
        ]
        self._clock = 0  # LRU stamp source
        # Statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line for ``line_addr``, or None on miss.

        ``touch=False`` performs a snoop-style probe that does not perturb
        LRU state.
        """
        set_index = self.mapper.set_index_of_line(line_addr)
        tag = self.mapper.tag_of_line(line_addr)
        for line in self._sets[set_index]:
            if line.valid and line.tag == tag:
                if touch:
                    self._clock += 1
                    line.lru = self._clock
                return line
        return None

    def fill(self, line_addr: int, state: MesiState) -> Tuple[Optional[int], MesiState]:
        """Insert ``line_addr`` with ``state``; return the victim.

        Returns ``(victim_line_addr, victim_state)``; the victim address is
        None when an invalid way was used.  The caller is responsible for
        writing back Modified victims.
        """
        set_index = self.mapper.set_index_of_line(line_addr)
        ways = self._sets[set_index]
        victim = min(ways, key=lambda ln: (ln.valid, ln.lru))
        victim_addr: Optional[int] = None
        victim_state = MesiState.INVALID
        if victim.valid:
            victim_addr = self.mapper.line_of(set_index, victim.tag)
            victim_state = victim.state
            self.evictions += 1
        victim.tag = self.mapper.tag_of_line(line_addr)
        victim.state = state
        self._clock += 1
        victim.lru = self._clock
        return victim_addr, victim_state

    def invalidate(self, line_addr: int) -> MesiState:
        """Invalidate ``line_addr`` if resident; return its prior state."""
        line = self.lookup(line_addr, touch=False)
        if line is None:
            return MesiState.INVALID
        prior = line.state
        line.state = MesiState.INVALID
        return prior

    def set_state(self, line_addr: int, state: MesiState) -> None:
        """Set the MESI state of a resident line (no-op if absent)."""
        line = self.lookup(line_addr, touch=False)
        if line is not None:
            line.state = state

    def resident_lines(self) -> Dict[int, MesiState]:
        """Map of all valid line addresses to states (tests/invariants)."""
        result: Dict[int, MesiState] = {}
        for set_index, ways in enumerate(self._sets):
            for line in ways:
                if line.valid:
                    result[self.mapper.line_of(set_index, line.tag)] = line.state
        return result
