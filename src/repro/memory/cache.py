"""Generic set-associative cache array with LRU replacement.

Used for both the private L1s and the shared L2.  The array stores MESI
states but no data values: the simulator is timing-directed (workloads are
synthetic operation streams, so there are no functional values to track —
and the paper notes workload-state violations cannot occur anyway because
synchronization executes inside the simulator).

Line state lives in flat structure-of-arrays banks — three parallel lists
``_tag``/``_state``/``_lru`` indexed by ``slot = set_index * associativity
+ way`` — instead of per-line objects.  Hit/miss decisions come from a
single ``{line_addr: slot}`` dict over valid lines, so the hot path is one
dict probe with no tag/set arithmetic; the way-range of a set is scanned
only for victim selection (fills are miss-rate-rare).  Decisions, eviction
victims, and LRU ordering are bit-for-bit identical to an
associativity-wide way scan (tests/test_cache_index.py checks this against
a reference implementation over random streams).

The banks double as the copy-on-write substrate for checkpoints
(``repro.core.snapshot``): content writes (``_tag``/``_state``) mark a
fixed-size *page* of slots dirty, and ``snapshot_sync``/
``snapshot_restore`` copy only the pages dirtied since the previous
snapshot instead of the whole array.  The LRU bank is the exception —
every access writes it, so it is shadowed wholesale with one C-level
list copy per snapshot rather than page-tracked on the access path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import CacheConfig
from repro.memory.address import AddressMapper
from repro.memory.mesi import MesiState

_INVALID = MesiState.INVALID

#: Dirty-tracking granularity: one page is ``2**PAGE_BITS`` consecutive
#: slots across the content banks.  64 slots keeps page copies slice-sized
#: while a busy checkpoint interval still touches a small fraction of a
#: large L2 (tail pages of a non-multiple bank are simply short).
PAGE_BITS = 6
PAGE_SLOTS = 1 << PAGE_BITS


class LineView:
    """Read/write view of one resident line (tests and cold paths).

    The hot paths work on raw slot indices; this proxy keeps the historic
    ``lookup(addr).state`` object API alive without storing per-line
    objects.  Writes go through the array so dirty-page tracking sees
    them.
    """

    __slots__ = ("_array", "slot")

    def __init__(self, array: "CacheArray", slot: int) -> None:
        self._array = array
        self.slot = slot

    @property
    def tag(self) -> int:
        return self._array._tag[self.slot]

    @property
    def lru(self) -> int:
        return self._array._lru[self.slot]

    @property
    def state(self) -> MesiState:
        return MesiState(self._array._state[self.slot])

    @state.setter
    def state(self, value: MesiState) -> None:
        array = self._array
        if value == _INVALID:
            array.invalidate(array.line_addr_of_slot(self.slot))
        else:
            array.write_state(self.slot, value)


#: Legacy export name: the per-line object type callers used to receive.
CacheLine = LineView


class CacheArray:
    """Set-associative tag/state array with true-LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.mapper = AddressMapper(config)
        num_slots = config.num_sets * config.associativity
        self._assoc = config.associativity
        # Structure-of-arrays banks: slot = set_index * assoc + way.
        self._tag: List[int] = [-1] * num_slots
        self._state: List[int] = [0] * num_slots  # MesiState values
        self._lru: List[int] = [0] * num_slots
        # Tag index over *valid* lines only, keyed by full line address;
        # the single source of truth for hit/miss decisions.
        self._index: Dict[int, int] = {}
        self._set_mask = config.num_sets - 1
        self._set_bits = self.mapper.set_bits
        self._clock = 0  # LRU stamp source
        # Copy-on-write bookkeeping (driven by repro.core.snapshot).
        self._dirty: set = set()  # page indices written since last sync
        self._shadow: Optional[Tuple[List[int], List[int], List[int]]] = None
        self._snap_epoch = 0  # serial of the snapshot the shadow matches
        # Statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __deepcopy__(self, memo) -> "CacheArray":
        """Standalone clone: banks are flat int lists, copied directly.

        Checkpoints no longer deepcopy arrays (they go through the
        dirty-page shadow banks); this remains for tests and ad-hoc
        cloning.  Config and mapper are immutable and shared.
        """
        cls = self.__class__
        new = cls.__new__(cls)
        memo[id(self)] = new
        new.config = self.config
        new.mapper = self.mapper
        new._assoc = self._assoc
        new._tag = list(self._tag)
        new._state = list(self._state)
        new._lru = list(self._lru)
        new._index = dict(self._index)
        new._set_mask = self._set_mask
        new._set_bits = self._set_bits
        new._clock = self._clock
        new._dirty = set(self._dirty)
        shadow = self._shadow
        new._shadow = (
            None
            if shadow is None
            else (list(shadow[0]), list(shadow[1]), list(shadow[2]))
        )
        new._snap_epoch = self._snap_epoch
        new.hits = self.hits
        new.misses = self.misses
        new.evictions = self.evictions
        return new

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #

    def find(self, line_addr: int, touch: bool = True) -> Optional[int]:
        """Return the slot holding ``line_addr``, or None on miss.

        This is the *only* tag-scan implementation: ``lookup`` and the
        L1/L2 access paths all funnel through it.  ``touch=False``
        performs a snoop-style probe that does not perturb LRU state.
        """
        slot = self._index.get(line_addr)
        if slot is not None and touch:
            clock = self._clock + 1
            self._clock = clock
            self._lru[slot] = clock
            # No dirty marking: the LRU bank is written on every access,
            # so the snapshot layer copies it wholesale instead of paying
            # per-touch page bookkeeping on the hottest path in the
            # memory system (see snapshot_sync).
        return slot

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[LineView]:
        """Return a view of the resident line for ``line_addr``, or None.

        Object-API wrapper over :meth:`find` for tests and cold paths;
        hot paths use :meth:`find` and the banks directly.
        """
        slot = self.find(line_addr, touch)
        if slot is None:
            return None
        return LineView(self, slot)

    def fill(self, line_addr: int, state: MesiState) -> Tuple[Optional[int], MesiState]:
        """Insert ``line_addr`` with ``state``; return the victim.

        Returns ``(victim_line_addr, victim_state)``; the victim address is
        None when an invalid way was used.  The caller is responsible for
        writing back Modified victims.

        Precondition: ``line_addr`` is not resident.  Callers fill only
        after a lookup miss; filling a resident line would duplicate its
        tag across ways.
        """
        set_index = line_addr & self._set_mask
        tags = self._tag
        states = self._state
        lrus = self._lru
        # Victim priority: invalid ways first, then least-recently used;
        # ties keep the lowest way (bit-identical to min() over the set).
        base = set_index * self._assoc
        victim = base
        best_valid = states[base] != 0
        best_lru = lrus[base]
        for slot in range(base + 1, base + self._assoc):
            valid = states[slot] != 0
            if valid < best_valid or (valid == best_valid and lrus[slot] < best_lru):
                victim = slot
                best_valid = valid
                best_lru = lrus[slot]
        victim_addr: Optional[int] = None
        victim_state = states[victim]
        if victim_state != 0:
            victim_addr = (tags[victim] << self._set_bits) | set_index
            self.evictions += 1
            del self._index[victim_addr]
        tags[victim] = line_addr >> self._set_bits
        states[victim] = state
        clock = self._clock + 1
        self._clock = clock
        lrus[victim] = clock
        if self._shadow is not None:
            self._dirty.add(victim >> PAGE_BITS)
        if state != _INVALID:
            self._index[line_addr] = victim
        return victim_addr, MesiState(victim_state)

    def invalidate(self, line_addr: int) -> MesiState:
        """Invalidate ``line_addr`` if resident; return its prior state."""
        slot = self._index.pop(line_addr, None)
        if slot is None:
            return _INVALID
        states = self._state
        prior = states[slot]
        states[slot] = 0
        if self._shadow is not None:
            self._dirty.add(slot >> PAGE_BITS)
        return MesiState(prior)

    def write_state(self, slot: int, state: MesiState) -> None:
        """Set a valid slot's MESI state (must not be INVALID)."""
        self._state[slot] = state
        if self._shadow is not None:
            self._dirty.add(slot >> PAGE_BITS)

    def set_state(self, line_addr: int, state: MesiState) -> None:
        """Set the MESI state of a resident line (no-op if absent)."""
        if state == _INVALID:
            self.invalidate(line_addr)
            return
        slot = self._index.get(line_addr)
        if slot is not None:
            self._state[slot] = state
            if self._shadow is not None:
                self._dirty.add(slot >> PAGE_BITS)

    def line_addr_of_slot(self, slot: int) -> int:
        """Reconstruct the line address stored in ``slot``."""
        return (self._tag[slot] << self._set_bits) | (slot // self._assoc)

    def resident_lines(self) -> Dict[int, MesiState]:
        """Map of all valid line addresses to states (tests/invariants)."""
        states = self._state
        return {
            line_addr: MesiState(states[slot])
            for line_addr, slot in sorted(self._index.items())
        }

    # ------------------------------------------------------------------ #
    # Copy-on-write snapshot substrate (driven by repro.core.snapshot)
    # ------------------------------------------------------------------ #

    def snapshot_sync(self) -> int:
        """Fold writes since the last sync into the shadow banks.

        Content banks (``_tag``/``_state``) are folded page-by-page from
        the dirty set; the LRU bank is write-hot (every access touches
        it), so it is re-shadowed wholesale with one C-level ``list``
        copy instead of being page-tracked on the access path.  After
        this call the shadows hold the array's current contents and the
        dirty set is empty, so a later :meth:`snapshot_restore` rewinds
        exactly to this point.  Returns the number of content pages
        copied (the first sync materializes the shadow and reports every
        page; dirty tracking only starts once a shadow exists — before
        that the write paths skip the bookkeeping entirely, so
        non-checkpointed runs never pay for it).
        """
        dirty = self._dirty
        if self._shadow is None:
            self._shadow = (list(self._tag), list(self._state), list(self._lru))
            dirty.clear()
            return (len(self._tag) + PAGE_SLOTS - 1) >> PAGE_BITS
        stag, sstate, slru = self._shadow
        tags, states = self._tag, self._state
        for page in dirty:
            lo = page << PAGE_BITS
            hi = lo + PAGE_SLOTS
            stag[lo:hi] = tags[lo:hi]
            sstate[lo:hi] = states[lo:hi]
        slru[:] = self._lru
        pages = len(dirty)
        dirty.clear()
        return pages

    def snapshot_restore(self) -> int:
        """Rewind every page written since the last sync to its shadow.

        The tag index is patched per restored page, so repeated restores
        from the same sync point are supported (the shadow is never
        mutated here).  Returns the number of pages copied back.
        """
        shadow = self._shadow
        if shadow is None:
            raise RuntimeError("snapshot_restore before any snapshot_sync")
        stag, sstate, slru = shadow
        # The LRU bank rewinds wholesale even with no content pages dirty:
        # it is written on every access and not page-tracked.
        self._lru[:] = slru
        dirty = self._dirty
        if not dirty:
            return 0
        index = self._index
        tags, states = self._tag, self._state
        set_bits = self._set_bits
        assoc = self._assoc
        num_slots = len(states)
        # Phase 1: unregister every currently-valid line in a dirty page.
        # (Two phases: a line may have moved between two dirty pages, so
        # all stale entries must be gone before any page re-registers.)
        for page in dirty:
            lo = page << PAGE_BITS
            hi = min(lo + PAGE_SLOTS, num_slots)
            for slot in range(lo, hi):
                if states[slot] != 0:
                    index.pop((tags[slot] << set_bits) | (slot // assoc), None)
        # Phase 2: copy the shadow back and re-register its valid lines.
        for page in dirty:
            lo = page << PAGE_BITS
            hi = lo + PAGE_SLOTS
            tags[lo:hi] = stag[lo:hi]
            states[lo:hi] = sstate[lo:hi]
            for slot in range(lo, min(hi, num_slots)):
                if states[slot] != 0:
                    index[(tags[slot] << set_bits) | (slot // assoc)] = slot
        pages = len(dirty)
        dirty.clear()
        return pages
