"""Generic set-associative cache array with LRU replacement.

Used for both the private L1s and the shared L2.  The array stores MESI
states but no data values: the simulator is timing-directed (workloads are
synthetic operation streams, so there are no functional values to track —
and the paper notes workload-state violations cannot occur anyway because
synchronization executes inside the simulator).

Lookups are O(1): each set keeps a ``{tag: line}`` dict alongside the way
list, maintained through fill/invalidate.  The way list is retained for
LRU victim selection (fills are miss-rate-rare) and for residency dumps;
hit/miss decisions, eviction victims, and LRU ordering are bit-for-bit
identical to an associativity-wide way scan (tests/test_cache_index.py
checks this against a reference implementation over random streams).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import CacheConfig
from repro.memory.address import AddressMapper
from repro.memory.mesi import MesiState

_INVALID = MesiState.INVALID


class CacheLine:
    """One cache line: tag, MESI state, LRU stamp."""

    __slots__ = ("tag", "state", "lru")

    def __init__(self) -> None:
        self.tag = -1
        self.state = MesiState.INVALID
        self.lru = 0

    @property
    def valid(self) -> bool:
        return self.state != MesiState.INVALID

    def _sort_key(self) -> Tuple[bool, int]:
        # Victim priority: invalid ways first, then least-recently used.
        return (self.state != MesiState.INVALID, self.lru)


class CacheArray:
    """Set-associative tag/state array with true-LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.mapper = AddressMapper(config)
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(config.associativity)]
            for _ in range(config.num_sets)
        ]
        # Per-set tag index over *valid* lines only; the single source of
        # truth for hit/miss decisions.
        self._index: List[Dict[int, CacheLine]] = [
            {} for _ in range(config.num_sets)
        ]
        self._set_mask = config.num_sets - 1
        self._set_bits = self.mapper.set_bits
        self._clock = 0  # LRU stamp source
        # Statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __deepcopy__(self, memo) -> "CacheArray":
        """Checkpoint fast path: copy lines directly, rebuild the index.

        Cache arrays dominate snapshot cost (thousands of lines per L1/L2);
        the generic deepcopy machinery spends most of its time reconstructing
        them object by object.  Config and mapper are immutable and shared.
        """
        cls = self.__class__
        new = cls.__new__(cls)
        memo[id(self)] = new
        new.config = self.config
        new.mapper = self.mapper
        new._set_mask = self._set_mask
        new._set_bits = self._set_bits
        new._clock = self._clock
        new.hits = self.hits
        new.misses = self.misses
        new.evictions = self.evictions
        invalid = _INVALID
        new_line = CacheLine.__new__
        new_sets: List[List[CacheLine]] = []
        new_index: List[Dict[int, CacheLine]] = []
        for ways in self._sets:
            copies: List[CacheLine] = []
            index: Dict[int, CacheLine] = {}
            for line in ways:
                copy = new_line(CacheLine)
                copy.tag = line.tag
                copy.state = line.state
                copy.lru = line.lru
                copies.append(copy)
                if copy.state != invalid:
                    index[copy.tag] = copy
            new_sets.append(copies)
            new_index.append(index)
        new._sets = new_sets
        new._index = new_index
        return new

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line for ``line_addr``, or None on miss.

        ``touch=False`` performs a snoop-style probe that does not perturb
        LRU state.
        """
        line = self._index[line_addr & self._set_mask].get(line_addr >> self._set_bits)
        if line is not None and touch:
            self._clock += 1
            line.lru = self._clock
        return line

    def fill(self, line_addr: int, state: MesiState) -> Tuple[Optional[int], MesiState]:
        """Insert ``line_addr`` with ``state``; return the victim.

        Returns ``(victim_line_addr, victim_state)``; the victim address is
        None when an invalid way was used.  The caller is responsible for
        writing back Modified victims.

        Precondition: ``line_addr`` is not resident.  Callers fill only
        after a lookup miss; filling a resident line would duplicate its
        tag across ways.
        """
        set_index = line_addr & self._set_mask
        tag = line_addr >> self._set_bits
        index = self._index[set_index]
        victim = min(self._sets[set_index], key=CacheLine._sort_key)
        victim_addr: Optional[int] = None
        victim_state = victim.state
        if victim_state != _INVALID:
            victim_addr = (victim.tag << self._set_bits) | set_index
            self.evictions += 1
            del index[victim.tag]
        victim.tag = tag
        victim.state = state
        self._clock += 1
        victim.lru = self._clock
        if state != _INVALID:
            index[tag] = victim
        return victim_addr, victim_state

    def invalidate(self, line_addr: int) -> MesiState:
        """Invalidate ``line_addr`` if resident; return its prior state."""
        line = self._index[line_addr & self._set_mask].pop(
            line_addr >> self._set_bits, None
        )
        if line is None:
            return MesiState.INVALID
        prior = line.state
        line.state = MesiState.INVALID
        return prior

    def set_state(self, line_addr: int, state: MesiState) -> None:
        """Set the MESI state of a resident line (no-op if absent)."""
        if state == _INVALID:
            self.invalidate(line_addr)
            return
        line = self._index[line_addr & self._set_mask].get(
            line_addr >> self._set_bits
        )
        if line is not None:
            line.state = state

    def resident_lines(self) -> Dict[int, MesiState]:
        """Map of all valid line addresses to states (tests/invariants)."""
        result: Dict[int, MesiState] = {}
        for set_index, ways in enumerate(self._sets):
            for line in ways:
                if line.state != _INVALID:
                    result[(line.tag << self._set_bits) | set_index] = line.state
        return result
