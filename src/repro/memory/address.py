"""Address arithmetic: line addresses, set indices, tags, pages."""

from __future__ import annotations

from repro.config import CacheConfig
from repro.util import log2_int


class AddressMapper:
    """Decomposes byte addresses for one cache geometry.

    Precomputes the shift/mask values so the hot-path methods are single
    arithmetic operations.
    """

    __slots__ = ("line_bits", "set_bits", "num_sets", "_set_mask")

    def __init__(self, config: CacheConfig) -> None:
        self.line_bits = log2_int(config.line_size)
        self.num_sets = config.num_sets
        self.set_bits = log2_int(config.num_sets)
        self._set_mask = config.num_sets - 1

    def line_addr(self, addr: int) -> int:
        """Line-granular address (byte address with offset bits dropped)."""
        return addr >> self.line_bits

    def set_index(self, addr: int) -> int:
        """Cache set index for a byte address."""
        return (addr >> self.line_bits) & self._set_mask

    def set_index_of_line(self, line: int) -> int:
        """Cache set index for a line address."""
        return line & self._set_mask

    def tag(self, addr: int) -> int:
        """Tag bits for a byte address."""
        return addr >> (self.line_bits + self.set_bits)

    def tag_of_line(self, line: int) -> int:
        """Tag bits for a line address."""
        return line >> self.set_bits

    def line_of(self, set_index: int, tag: int) -> int:
        """Reconstruct a line address from set index and tag."""
        return (tag << self.set_bits) | set_index


def page_of(addr: int, page_size: int) -> int:
    """Page number of a byte address (used by the COW checkpoint model)."""
    return addr // page_size
