"""Shared L2 cache, simulated by the manager thread (paper Figure 1)."""

from __future__ import annotations

from repro.config import L2Config
from repro.memory.cache import CacheArray
from repro.memory.mesi import MesiState


class L2Cache:
    """Shared, optionally banked L2: tag array plus hit/miss latencies.

    The L2 is non-inclusive; L1 writebacks allocate.  Dirty L2 victims
    drain to memory off the critical path (their latency is folded into the
    100-clock miss penalty, as in the paper's flat L2-miss model).

    With ``num_banks > 1``, lines interleave across banks and each bank is
    a serially-occupied resource: two requests hitting the same bank
    back-to-back serialize (``access`` accounts the conflict), requests to
    different banks proceed in parallel — the "L2 cache banks and their
    interconnection to cores" of the paper's manager thread.
    """

    #: Bank occupancy per request, in target cycles.
    BANK_BUSY_CYCLES = 2

    def __init__(self, config: L2Config) -> None:
        self.config = config
        self.array = CacheArray(config.cache)
        self._bank_free_at = [0] * config.num_banks
        self.dram = None
        if config.dram is not None:
            from repro.memory.dram import DramModel

            self.dram = DramModel(config.dram, config.cache.line_size)
        # Statistics
        self.accesses = 0
        self.misses = 0
        self.writebacks_received = 0
        self.bank_conflict_cycles = 0

    def bank_of(self, line_addr: int) -> int:
        """Bank index serving a line (low-order interleaving)."""
        return line_addr % self.config.num_banks

    def access(self, line_addr: int, at: int = 0) -> int:
        """Look up a line for a fill request starting at target time ``at``;
        return the access latency including any bank conflict.

        A hit costs ``hit_latency`` (8 clocks in the paper's target); a miss
        costs ``miss_latency`` (100 clocks) and installs the line.  Bank
        occupancy follows the same monotone arrival-order semantics as the
        snooping bus, so banked configurations expose additional ordering
        sensitivity to slack.
        """
        self.accesses += 1
        wait = 0
        if self.config.num_banks > 1:
            bank = self.bank_of(line_addr)
            start = max(at, self._bank_free_at[bank])
            wait = start - at
            self.bank_conflict_cycles += wait
            self._bank_free_at[bank] = start + self.BANK_BUSY_CYCLES
        if self.array.find(line_addr) is not None:
            return wait + self.config.cache.hit_latency
        self.misses += 1
        self.array.fill(line_addr, MesiState.EXCLUSIVE)
        if self.dram is not None:
            return wait + self.dram.access(line_addr, at=at + wait)
        return wait + self.config.miss_latency

    def writeback(self, line_addr: int) -> None:
        """Absorb a dirty line evicted from an L1."""
        self.writebacks_received += 1
        slot = self.array.find(line_addr, touch=False)
        if slot is None:
            self.array.fill(line_addr, MesiState.MODIFIED)
        else:
            self.array.write_state(slot, MesiState.MODIFIED)

    def miss_rate(self) -> float:
        """L2 miss rate over fill requests."""
        return self.misses / self.accesses if self.accesses else 0.0
