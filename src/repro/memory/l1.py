"""Core-side private L1 data cache controller (lock-up free).

Each SlackSim core thread simulates its target core *and its L1 caches*
(paper Figure 1).  The L1 resolves hits locally in one cycle; misses
allocate an MSHR and surface a bus-transaction request that the core thread
posts to its OutQ for the manager to service.
"""

from __future__ import annotations

import copy
from enum import IntEnum
from typing import List, Optional, Tuple

from repro.config import CacheConfig, CoreConfig
from repro.memory.cache import CacheArray
from repro.memory.mesi import BusOpKind, MesiState
from repro.memory.mshr import MshrEntry, MshrFile


class L1Outcome(IntEnum):
    """Result category of one L1 access attempt."""

    HIT = 0  #: satisfied locally this cycle
    MISS = 1  #: new miss; a bus transaction must be issued
    MERGED = 2  #: merged into an outstanding MSHR for the same line
    BLOCKED = 3  #: conflicts with an incompatible outstanding miss; retry
    MSHR_FULL = 4  #: structural stall; retry when an MSHR frees up


class L1AccessResult:
    """Outcome of an access, with the bus op to issue for new misses."""

    __slots__ = ("outcome", "line_addr", "bus_op")

    def __init__(
        self,
        outcome: L1Outcome,
        line_addr: int,
        bus_op: Optional[BusOpKind] = None,
    ) -> None:
        self.outcome = outcome
        self.line_addr = line_addr
        self.bus_op = bus_op


# Hot-path aliases (module loads beat enum attribute lookups per access).
_HIT = L1Outcome.HIT
_MISS = L1Outcome.MISS
_MERGED = L1Outcome.MERGED
_BLOCKED = L1Outcome.BLOCKED
_MSHR_FULL = L1Outcome.MSHR_FULL
_GETS = BusOpKind.GETS
_GETX = BusOpKind.GETX
_UPGR = BusOpKind.UPGR
_EXCLUSIVE = MesiState.EXCLUSIVE
_MODIFIED = MesiState.MODIFIED


class L1Cache:
    """Private L1D with MSHRs, driven by one core's memory operations."""

    def __init__(self, core_id: int, config: CacheConfig, core_config: CoreConfig) -> None:
        self.core_id = core_id
        self.array = CacheArray(config)
        self.mshrs = MshrFile(core_config.num_mshrs)
        self.hit_latency = config.hit_latency
        self._line_bits = self.array.mapper.line_bits
        #: Bus op of the most recent :attr:`L1Outcome.MISS` from
        #: :meth:`access_line` (valid only immediately after such a return;
        #: lets the hot path avoid allocating an L1AccessResult per op).
        self.last_bus_op: Optional[BusOpKind] = None
        # Statistics
        self.loads = 0
        self.stores = 0
        self.load_misses = 0
        self.store_misses = 0
        self.upgrades = 0
        self.writebacks = 0
        self.snoop_invalidations = 0
        self.snoop_downgrades = 0

    def __deepcopy__(self, memo) -> "L1Cache":
        """Checkpoint-residue clone: scalars share, array/MSHRs copy.

        The array goes through the memo so the snapshot layer can map it
        onto a frozen stub.
        """
        new = L1Cache.__new__(L1Cache)
        memo[id(self)] = new
        new.__dict__.update(self.__dict__)
        new.array = copy.deepcopy(self.array, memo)
        new.mshrs = self.mshrs.__deepcopy__(memo)
        return new

    # ------------------------------------------------------------------ #
    # Access path (called by the core model)
    # ------------------------------------------------------------------ #

    def access(self, addr: int, is_store: bool, now: int) -> L1AccessResult:
        """Attempt one load/store at core-local time ``now``.

        Returns the outcome; for :attr:`L1Outcome.MISS` the caller must
        allocate the bus transaction (the MSHR has already been charged).
        Thin wrapper over :meth:`access_line` (the engine's entry point);
        both share one implementation.
        """
        line_addr = addr >> self._line_bits
        outcome = self.access_line(line_addr, is_store, now)
        bus_op = self.last_bus_op if outcome is _MISS else None
        return L1AccessResult(outcome, line_addr, bus_op)

    def access_line(self, line_addr: int, is_store: bool, now: int) -> L1Outcome:
        """Allocation-free access fast path; ``line_addr`` is pre-shifted.

        Semantics are bit-for-bit those of :meth:`access`; for
        :attr:`L1Outcome.MISS` the bus op to issue is left in
        :attr:`last_bus_op`.  The tag probe and LRU touch are
        :meth:`CacheArray.find` — the one shared scan implementation.
        """
        array = self.array
        slot = array.find(line_addr)
        if not is_store:
            self.loads += 1
            if slot is not None:
                array.hits += 1
                return _HIT
            kind = _GETS
        else:
            self.stores += 1
            if slot is not None:
                states = array._state
                if states[slot] >= _EXCLUSIVE:  # writable (E or M) -> M
                    # The find() above already dirtied this slot's page.
                    states[slot] = _MODIFIED
                    array.hits += 1
                    return _HIT
                # Store to a Shared line: needs an upgrade transaction.
                kind = _UPGR
            else:
                kind = _GETX
        mshrs = self.mshrs
        outstanding = mshrs._entries.get(line_addr)
        if outstanding is not None:
            # Loads merge into any outstanding miss; stores only into a
            # transaction that will grant write permission.  (MshrFile.merge
            # inlined: it would re-do the entry lookup we just did.)
            ok = outstanding.kind
            if not is_store or ok is _GETX or ok is _UPGR:
                outstanding.merged_rob_ids.append(0)
                mshrs.merges += 1
                return _MERGED
            return _BLOCKED
        if len(mshrs._entries) >= mshrs.capacity:
            mshrs.full_stalls += 1
            return _MSHR_FULL
        mshrs.allocate(line_addr, kind, now)
        array.misses += 1
        if is_store:
            if kind is _UPGR:
                self.upgrades += 1
            else:
                self.store_misses += 1
        else:
            self.load_misses += 1
        self.last_bus_op = kind
        return _MISS

    # ------------------------------------------------------------------ #
    # Fill path (called when the manager's response arrives)
    # ------------------------------------------------------------------ #

    def fill(self, line_addr: int, state: MesiState) -> Tuple[Optional[int], bool]:
        """Complete an outstanding miss; install the line.

        Returns ``(victim_line_addr, victim_dirty)`` so the core thread can
        post a writeback for a Modified victim.  Upgrade completions mutate
        the resident line in place (no victim).
        """
        entry = self.mshrs.release(line_addr)
        if entry.kind == BusOpKind.UPGR:
            slot = self.array.find(line_addr, touch=False)
            if slot is not None:
                self.array.write_state(slot, state)
                return None, False
            # The line was invalidated by a remote GETX while the upgrade
            # was in flight; fall through and install it fresh.
        victim_addr, victim_state = self.array.fill(line_addr, state)
        victim_dirty = victim_state == MesiState.MODIFIED
        if victim_dirty:
            self.writebacks += 1
        return victim_addr, victim_dirty

    def pending(self, line_addr: int) -> Optional[MshrEntry]:
        """The outstanding MSHR entry for a line, if any."""
        return self.mshrs.get(line_addr)

    # ------------------------------------------------------------------ #
    # Snoop path (coherence events pushed by the manager)
    # ------------------------------------------------------------------ #

    def snoop_invalidate(self, line_addr: int) -> MesiState:
        """Remote GETX/UPGR: drop our copy; return the prior state."""
        prior = self.array.invalidate(line_addr)
        if prior != MesiState.INVALID:
            self.snoop_invalidations += 1
        return prior

    def snoop_downgrade(self, line_addr: int) -> MesiState:
        """Remote GETS: demote M/E to Shared; return the prior state."""
        array = self.array
        slot = array.find(line_addr, touch=False)
        if slot is None:
            return MesiState.INVALID
        prior = MesiState(array._state[slot])
        if prior in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
            array.write_state(slot, MesiState.SHARED)
            self.snoop_downgrades += 1
        return prior

    # ------------------------------------------------------------------ #

    def resident_lines(self):
        """Valid lines and states (used by coherence-invariant tests)."""
        return self.array.resident_lines()

    def miss_rate(self) -> float:
        """Combined load+store miss rate."""
        accesses = self.loads + self.stores
        if accesses == 0:
            return 0.0
        return (self.load_misses + self.store_misses + self.upgrades) / accesses
