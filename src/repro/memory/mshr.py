"""Miss Status Holding Registers for the lock-up-free L1s.

The paper's L1 caches are lock-up free: the core keeps executing past a
miss, and further accesses to a line that already has an outstanding miss
merge into its MSHR instead of issuing duplicate bus transactions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.memory.mesi import BusOpKind


class MshrEntry:
    """One outstanding miss: the line, the bus op issued, merged op ids."""

    __slots__ = ("line_addr", "kind", "issue_time", "merged_rob_ids")

    def __init__(self, line_addr: int, kind: BusOpKind, issue_time: int) -> None:
        self.line_addr = line_addr
        self.kind = kind
        self.issue_time = issue_time
        self.merged_rob_ids: List[int] = []

    def __deepcopy__(self, memo) -> "MshrEntry":
        # Flat scalars plus a list of ints: direct copies spare the
        # checkpoint residue the generic per-field deepcopy walk.
        new = MshrEntry(self.line_addr, self.kind, self.issue_time)
        new.merged_rob_ids = list(self.merged_rob_ids)
        memo[id(self)] = new
        return new


class MshrFile:
    """Fixed-capacity MSHR file keyed by line address."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Dict[int, MshrEntry] = {}
        # Statistics
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __deepcopy__(self, memo) -> "MshrFile":
        new = MshrFile.__new__(MshrFile)
        memo[id(self)] = new
        new.capacity = self.capacity
        new._entries = {
            line: entry.__deepcopy__(memo) for line, entry in self._entries.items()
        }
        new.allocations = self.allocations
        new.merges = self.merges
        new.full_stalls = self.full_stalls
        return new

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def get(self, line_addr: int) -> Optional[MshrEntry]:
        """Return the outstanding entry for a line, if any."""
        return self._entries.get(line_addr)

    def allocate(self, line_addr: int, kind: BusOpKind, issue_time: int) -> MshrEntry:
        """Allocate an entry; caller must check :attr:`full` first."""
        assert line_addr not in self._entries, "line already has an MSHR"
        assert not self.full, "MSHR file is full"
        entry = MshrEntry(line_addr, kind, issue_time)
        self._entries[line_addr] = entry
        self.allocations += 1
        return entry

    def merge(self, line_addr: int, rob_id: int) -> MshrEntry:
        """Merge a secondary miss into the existing entry for the line."""
        entry = self._entries[line_addr]
        entry.merged_rob_ids.append(rob_id)
        self.merges += 1
        return entry

    def release(self, line_addr: int) -> MshrEntry:
        """Remove and return the entry for a completed miss."""
        return self._entries.pop(line_addr)

    def outstanding_lines(self) -> List[int]:
        """Line addresses with in-flight misses (deterministic order)."""
        return sorted(self._entries)
