"""Split request/response snooping bus (manager side).

The bus is the paper's canonical source of *simulation-state violations*:
its occupancy variables (``request_free_at``/``response_free_at``) are the
simulator's resource-tracking state, updated in the order the manager
serves transactions (host arrival order) while transaction timestamps
carry target time.  Under cycle-by-cycle simulation service order equals
timestamp order and the timing below is exact; under slack, out-of-order
service makes older transactions observe occupancy already advanced by
younger ones — exactly the error mechanism section 3 describes, and the
reason the violation monitor is attached to the bus grant.

Because bus conflicts are modeled, the critical latency of a quantum
simulation of this target is one clock (paper sections 1 and 5.2).
"""

from __future__ import annotations

from typing import Tuple

from repro.config import BusConfig


class SnoopBus:
    """Timing state of the request and response buses."""

    def __init__(self, config: BusConfig) -> None:
        self.config = config
        self.request_free_at = 0  # target time the request bus frees up
        self.response_free_at = 0  # target time the response bus frees up
        self._last_request_ts = -1  # newest request timestamp granted
        # Statistics
        self.requests = 0
        self.responses = 0
        self.request_conflict_cycles = 0
        self.response_conflict_cycles = 0
        self.stale_grants = 0  # grants given out of timestamp order

    def grant_request(self, ts: int) -> int:
        """Arbitrate the request bus for a transaction stamped ``ts``.

        Returns the target time the snoop request appears on the bus.  The
        occupancy variable only moves forward: a late-served request with
        an older timestamp observes bus state already advanced by younger
        transactions — the timing distortion that the bus monitoring
        variable counts as a violation.
        """
        self.requests += 1
        earliest = ts + self.config.arbitration_latency
        if ts < self._last_request_ts:
            self.stale_grants += 1
        else:
            self._last_request_ts = ts
        grant = max(earliest, self.request_free_at)
        self.request_conflict_cycles += grant - earliest
        self.request_free_at = grant + self.config.request_cycles
        return grant

    def schedule_response(self, data_ready: int) -> Tuple[int, int]:
        """Occupy the response bus for a data transfer ready at
        ``data_ready``.

        Returns ``(start, done)`` in target time; ``done`` is when the
        requesting core receives the line.  Same monotone-occupancy
        semantics as :meth:`grant_request`.
        """
        self.responses += 1
        start = max(data_ready, self.response_free_at)
        self.response_conflict_cycles += start - data_ready
        done = start + self.config.response_cycles
        self.response_free_at = done
        return start, done
