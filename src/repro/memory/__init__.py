"""Memory-hierarchy substrate: caches, MESI coherence, bus, L2, cache map.

The split follows SlackSim's architecture (paper Figure 1): each core thread
owns its private L1 (``repro.memory.l1``) while the simulation manager owns
the request/response snooping bus (``repro.memory.bus``), the shared L2
(``repro.memory.l2``), and the global cache status map
(``repro.memory.cache_map``) whose monitoring variables detect the paper's
"map violations".
"""

from repro.memory.address import AddressMapper
from repro.memory.cache import CacheArray, CacheLine
from repro.memory.mesi import BusOpKind, MesiState
from repro.memory.mshr import MshrFile
from repro.memory.l1 import L1AccessResult, L1Cache, L1Outcome
from repro.memory.bus import SnoopBus
from repro.memory.l2 import L2Cache
from repro.memory.cache_map import CacheStatusMap
from repro.memory.dram import DramConfig, DramModel

__all__ = [
    "AddressMapper",
    "CacheArray",
    "CacheLine",
    "MesiState",
    "BusOpKind",
    "MshrFile",
    "L1Cache",
    "L1AccessResult",
    "L1Outcome",
    "SnoopBus",
    "L2Cache",
    "CacheStatusMap",
    "DramConfig",
    "DramModel",
]
