"""Global cache status map (manager side).

The manager tracks, for every line it has seen, which L1s hold it and
which (if any) holds it exclusively.  This is the paper's "cache status
map": the simulated-system state whose out-of-order updates are counted as
*map violations* (section 3; Figure 3b).  The map itself is pure protocol
bookkeeping — violation monitoring wraps it in
``repro.core.violations``.

The map may over-approximate sharers (clean L1 evictions are silent, as on
a real snooping bus), which is harmless: an invalidation sent to a core
that no longer holds the line is a no-op.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple


class MapEntry:
    """Sharers and exclusive owner for one line."""

    __slots__ = ("sharers", "owner")

    def __init__(self) -> None:
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None  # core holding the line in E/M


class CacheStatusMap:
    """Line-granular global view of all L1 contents."""

    def __init__(self) -> None:
        self._entries: Dict[int, MapEntry] = {}
        # Statistics
        self.gets_served = 0
        self.getx_served = 0
        self.upgr_served = 0
        self.writebacks = 0
        self.cache_to_cache = 0

    def entry(self, line_addr: int) -> Optional[MapEntry]:
        """The map entry for a line, or None if never seen."""
        return self._entries.get(line_addr)

    def _get_or_create(self, line_addr: int) -> MapEntry:
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = MapEntry()
            self._entries[line_addr] = entry
        return entry

    # ------------------------------------------------------------------ #
    # Transactions (called by the manager in host arrival order)
    # ------------------------------------------------------------------ #

    def apply_gets(self, line_addr: int, requester: int) -> Tuple[bool, Optional[int]]:
        """Read miss: add ``requester`` as a sharer.

        Returns ``(others_have_copy, downgrade_target)``: whether any other
        L1 holds the line (decides E vs S fill), and the previous exclusive
        owner that must be downgraded and supply the data (cache-to-cache
        transfer), if any.
        """
        self.gets_served += 1
        entry = self._get_or_create(line_addr)
        others = entry.sharers - {requester}
        downgrade_target: Optional[int] = None
        if entry.owner is not None and entry.owner != requester:
            downgrade_target = entry.owner
            self.cache_to_cache += 1
        entry.owner = None if others else requester
        entry.sharers.add(requester)
        if downgrade_target is not None:
            entry.owner = None
        return bool(others), downgrade_target

    def apply_getx(self, line_addr: int, requester: int) -> Tuple[List[int], Optional[int]]:
        """Write miss: grant ``requester`` exclusive ownership.

        Returns ``(invalidate_targets, data_source_owner)``: the cores that
        must invalidate their copies, and the previous M/E owner supplying
        the data cache-to-cache (None means the L2/memory supplies it).
        """
        self.getx_served += 1
        entry = self._get_or_create(line_addr)
        targets = sorted(entry.sharers - {requester})
        source = entry.owner if entry.owner not in (None, requester) else None
        if source is not None:
            self.cache_to_cache += 1
        entry.sharers = {requester}
        entry.owner = requester
        return targets, source

    def apply_upgr(self, line_addr: int, requester: int) -> List[int]:
        """Store to a Shared line: invalidate all other sharers, no data."""
        self.upgr_served += 1
        entry = self._get_or_create(line_addr)
        targets = sorted(entry.sharers - {requester})
        entry.sharers = {requester}
        entry.owner = requester
        return targets

    def apply_writeback(self, line_addr: int, core: int) -> None:
        """A dirty line left core ``core``'s L1."""
        self.writebacks += 1
        entry = self._entries.get(line_addr)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
        if not entry.sharers:
            del self._entries[line_addr]

    # ------------------------------------------------------------------ #

    def sharers_of(self, line_addr: int) -> Set[int]:
        """Cores the map believes hold the line (may over-approximate)."""
        entry = self._entries.get(line_addr)
        return set(entry.sharers) if entry else set()

    def owner_of(self, line_addr: int) -> Optional[int]:
        """The exclusive owner the map believes holds the line, if any."""
        entry = self._entries.get(line_addr)
        return entry.owner if entry else None

    def __len__(self) -> int:
        return len(self._entries)
