"""Global cache status map (manager side).

The manager tracks, for every line it has seen, which L1s hold it and
which (if any) holds it exclusively.  This is the paper's "cache status
map": the simulated-system state whose out-of-order updates are counted as
*map violations* (section 3; Figure 3b).  The map itself is pure protocol
bookkeeping — violation monitoring wraps it in
``repro.core.violations``.

The map may over-approximate sharers (clean L1 evictions are silent, as on
a real snooping bus), which is harmless: an invalidation sent to a core
that no longer holds the line is a no-op.

Each entry is an immutable ``(sharers_mask, owner)`` tuple — a bitmask of
core ids plus the exclusive owner — so the bus-service path allocates no
sets and snapshots reduce to a first-touch undo journal: every mutation
records the line's previous entry once per checkpoint interval, and
``journal_revert`` replays those records to rewind the map in O(lines
touched) (see ``repro.core.snapshot``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

#: Journal marker for "line was absent before this interval".
_ABSENT = None

#: One map entry: (bitmask of sharer core ids, exclusive owner or None).
Entry = Tuple[int, Optional[int]]


class CacheStatusMap:
    """Line-granular global view of all L1 contents."""

    def __init__(self) -> None:
        self._entries: Dict[int, Entry] = {}
        # First-touch undo journal since the last checkpoint: line_addr ->
        # entry tuple before the interval's first mutation (None=absent).
        self._journal: Dict[int, Optional[Entry]] = {}
        # Statistics
        self.gets_served = 0
        self.getx_served = 0
        self.upgr_served = 0
        self.writebacks = 0
        self.cache_to_cache = 0

    # ------------------------------------------------------------------ #
    # Transactions (called by the manager in host arrival order)
    # ------------------------------------------------------------------ #

    def apply_gets(self, line_addr: int, requester: int) -> Tuple[bool, Optional[int]]:
        """Read miss: add ``requester`` as a sharer.

        Returns ``(others_have_copy, downgrade_target)``: whether any other
        L1 holds the line (decides E vs S fill), and the previous exclusive
        owner that must be downgraded and supply the data (cache-to-cache
        transfer), if any.
        """
        self.gets_served += 1
        cur = self._entries.get(line_addr)
        journal = self._journal
        if line_addr not in journal:
            journal[line_addr] = cur
        mask, owner = cur if cur is not None else (0, None)
        rbit = 1 << requester
        others = mask & ~rbit
        downgrade_target: Optional[int] = None
        if owner is not None and owner != requester:
            downgrade_target = owner
            self.cache_to_cache += 1
        new_owner = None if (others or downgrade_target is not None) else requester
        self._entries[line_addr] = (mask | rbit, new_owner)
        return bool(others), downgrade_target

    def apply_getx(self, line_addr: int, requester: int) -> Tuple[List[int], Optional[int]]:
        """Write miss: grant ``requester`` exclusive ownership.

        Returns ``(invalidate_targets, data_source_owner)``: the cores that
        must invalidate their copies, and the previous M/E owner supplying
        the data cache-to-cache (None means the L2/memory supplies it).
        """
        self.getx_served += 1
        cur = self._entries.get(line_addr)
        journal = self._journal
        if line_addr not in journal:
            journal[line_addr] = cur
        mask, owner = cur if cur is not None else (0, None)
        targets = _bits_ascending(mask & ~(1 << requester))
        source = owner if owner is not None and owner != requester else None
        if source is not None:
            self.cache_to_cache += 1
        self._entries[line_addr] = (1 << requester, requester)
        return targets, source

    def apply_upgr(self, line_addr: int, requester: int) -> List[int]:
        """Store to a Shared line: invalidate all other sharers, no data."""
        self.upgr_served += 1
        cur = self._entries.get(line_addr)
        journal = self._journal
        if line_addr not in journal:
            journal[line_addr] = cur
        mask = cur[0] if cur is not None else 0
        targets = _bits_ascending(mask & ~(1 << requester))
        self._entries[line_addr] = (1 << requester, requester)
        return targets

    def apply_writeback(self, line_addr: int, core: int) -> None:
        """A dirty line left core ``core``'s L1."""
        self.writebacks += 1
        cur = self._entries.get(line_addr)
        if cur is None:
            return
        journal = self._journal
        if line_addr not in journal:
            journal[line_addr] = cur
        mask, owner = cur
        mask &= ~(1 << core)
        if owner == core:
            owner = None
        if mask:
            self._entries[line_addr] = (mask, owner)
        else:
            del self._entries[line_addr]

    # ------------------------------------------------------------------ #
    # Snapshot support (driven by repro.core.snapshot)
    # ------------------------------------------------------------------ #

    def journal_reset(self) -> None:
        """Start a new checkpoint interval: forget recorded prior values."""
        self._journal.clear()

    def journal_revert(self) -> int:
        """Rewind every line mutated since the last reset; return count."""
        entries = self._entries
        journal = self._journal
        for line_addr, old in journal.items():
            if old is _ABSENT:
                entries.pop(line_addr, None)
            else:
                entries[line_addr] = old
        count = len(journal)
        journal.clear()
        return count

    # ------------------------------------------------------------------ #

    def is_sharer(self, line_addr: int, core: int) -> bool:
        """Whether the map believes ``core`` holds the line."""
        cur = self._entries.get(line_addr)
        return cur is not None and bool(cur[0] >> core & 1)

    def sharers_of(self, line_addr: int) -> Set[int]:
        """Cores the map believes hold the line (may over-approximate)."""
        cur = self._entries.get(line_addr)
        return set(_bits_ascending(cur[0])) if cur else set()

    def owner_of(self, line_addr: int) -> Optional[int]:
        """The exclusive owner the map believes holds the line, if any."""
        cur = self._entries.get(line_addr)
        return cur[1] if cur else None

    def __len__(self) -> int:
        return len(self._entries)


def _bits_ascending(mask: int) -> List[int]:
    """Set bit positions of ``mask``, lowest first."""
    bits: List[int] = []
    while mask:
        low = mask & -mask
        bits.append(low.bit_length() - 1)
        mask ^= low
    return bits
