"""Out-of-order core timing models (one per target core)."""

from repro.cpu.core import CoreModel, CoreRequest, RequestKind

__all__ = ["CoreModel", "CoreRequest", "RequestKind"]
