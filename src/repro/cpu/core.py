"""Out-of-order core timing model.

Models the paper's 4-way-issue, 64-in-flight NetBurst-like core with a
window-occupancy pipeline model:

- each cycle offers ``issue_width`` issue slots;
- compute bursts are throttled by their ILP class (dependence-chained code
  issues ~1/cycle; unrolled numeric code fills the width);
- loads and stores access the lock-up-free L1 in the execution stage (as in
  SlackSim, which executes instructions at the execution units rather than
  at dispatch);
- a load miss does not stop issue: execution proceeds until the reorder
  window fills (``window_size`` instructions issued past the oldest
  outstanding load miss), capturing memory-level parallelism;
- stores retire through a store buffer and never stall the window (only
  MSHR exhaustion stalls them);
- workload synchronization ops (lock/barrier) serialize the pipeline and
  are executed by the manager (MP_Simplesim-style).

The instruction cache is modeled as ideal; the paper's scaled-down 16 KB
L1I sees negligible miss rates on the small SPLASH-2 kernels, and no
coherence traffic flows through it (see DESIGN.md substitutions).
"""

from __future__ import annotations

import copy
from collections import deque
from enum import IntEnum
from typing import Deque, List, Optional, Tuple

from repro.config import CoreConfig, TargetConfig
from repro.errors import SimulationError
from repro.isa.operations import ILP_HIGH, ILP_LOW, ILP_MED, Op, OpKind
from repro.isa.program import ProgramInterpreter
from repro.memory.cache import CacheArray
from repro.memory.l1 import L1Cache, L1Outcome
from repro.memory.mesi import BusOpKind, MesiState


class RequestKind(IntEnum):
    """Kinds of requests a core thread posts to its OutQ."""

    BUS = 0  #: coherence transaction (GETS/GETX/UPGR), carries a line
    WRITEBACK = 1  #: dirty eviction toward the L2
    LOCK_ACQUIRE = 2
    LOCK_RELEASE = 3
    BARRIER_ARRIVE = 4
    IFETCH = 5  #: instruction-line fetch (read-only GETS)


# repro: hot-path
class CoreRequest:
    """One outgoing request produced by the core model."""

    __slots__ = ("kind", "line_addr", "bus_op", "sync_id", "participants")

    def __init__(
        self,
        kind: RequestKind,
        line_addr: int = 0,
        bus_op: Optional[BusOpKind] = None,
        sync_id: int = 0,
        participants: int = 0,
    ) -> None:
        self.kind = kind
        self.line_addr = line_addr
        self.bus_op = bus_op
        self.sync_id = sync_id
        self.participants = participants

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoreRequest({self.kind.name}, line={self.line_addr}, bus={self.bus_op})"

    def __deepcopy__(self, memo) -> "CoreRequest":
        # Immutable once posted: snapshots share requests instead of
        # copying.
        return self


_ILP_RATE = {ILP_LOW: 1, ILP_MED: 2, ILP_HIGH: 64}

# Hot-loop aliases (module-level loads are cheaper than enum attribute
# lookups inside the per-cycle issue loop).
_LOAD = OpKind.LOAD
_STORE = OpKind.STORE
_COMPUTE = OpKind.COMPUTE
_HIT = L1Outcome.HIT
_MISS = L1Outcome.MISS
_MERGED = L1Outcome.MERGED
_BUS = RequestKind.BUS

#: Base byte address of the shared code region (all threads run one
#: binary, as the SPLASH programs do).
_CODE_BASE = 0x0800_0000


class CoreModel:
    """One target core plus its private L1 (the unit one core thread owns)."""

    #: Optional :class:`~repro.telemetry.TelemetrySession`, attached by the
    #: simulation façade.  The session deep-copies as itself, so checkpoint
    #: snapshots of this model share the live session rather than forking it.
    telemetry = None

    def __init__(
        self,
        core_id: int,
        target: TargetConfig,
        program: ProgramInterpreter,
    ) -> None:
        self.core_id = core_id
        self.config: CoreConfig = target.core
        self.l1 = L1Cache(core_id, target.l1d, target.core)
        self.program = program
        self.outbox: List[CoreRequest] = []  # drained by the core thread
        # Per-cycle hot constants, denormalized off the frozen config.
        self._issue_width = target.core.issue_width
        self._window_size = target.core.window_size

        # Optional instruction-fetch model: the committed stream walks a
        # *shared* wrapping code region (SPLASH threads run one binary);
        # fetch stalls on L1I misses, filled over the bus like any
        # read-shared line.
        self._icache = CacheArray(target.l1i) if target.core.model_icache else None
        self._code_lines = max(
            1, target.core.code_footprint // target.l1i.line_size
        )
        self._code_base_line = _CODE_BASE // target.l1i.line_size
        self._fetch_seq = 0  # instructions fetched (drives the fetch PC)
        self._instrs_per_line = max(
            1, target.l1i.line_size // target.core.instruction_bytes
        )
        self._fetch_line = -1  # line currently feeding the pipeline
        self._ifetch_pending: Optional[int] = None
        self.ifetch_stall_cycles = 0

        self._current_op: Optional[Op] = None
        self._compute_remaining = 0
        self._compute_rate = 1
        self._issue_seq = 0  # total instructions issued
        # Outstanding load misses as (issue_seq at issue, line_addr); the
        # window is full when issue_seq outruns the oldest by window_size.
        self._pending_loads: Deque[Tuple[int, int]] = deque()
        self.waiting_sync = False
        self.finished = False
        # Pages written since the last checkpoint (drives the COW cost of
        # the fork()-style checkpoint model; cleared by the controller).
        self._page_shift = target.memory.page_size.bit_length() - 1
        self.pages_touched: set = set()

        # Statistics
        self.cycles = 0
        self.stall_cycles = 0
        self.sync_stall_cycles = 0
        self.instructions = 0

    def __deepcopy__(self, memo) -> "CoreModel":
        """Checkpoint-residue clone: share immutables, copy live state.

        Starts from a reference-sharing ``__dict__`` copy (correct for
        every scalar and frozen-config attribute, present and future) and
        then replaces the mutable fields explicitly — keep that list in
        lockstep with ``__init__`` when adding mutable state.
        """
        cls = self.__class__
        new = cls.__new__(cls)
        memo[id(self)] = new
        d = new.__dict__
        d.update(self.__dict__)
        d["l1"] = copy.deepcopy(self.l1, memo)
        d["program"] = self.program.__deepcopy__(memo)
        d["outbox"] = copy.deepcopy(self.outbox, memo)
        if self._icache is not None:
            # Through the memo: the snapshot layer maps tracked arrays
            # onto frozen stubs.
            d["_icache"] = copy.deepcopy(self._icache, memo)
        d["_pending_loads"] = deque(self._pending_loads)  # tuples of ints
        d["pages_touched"] = set(self.pages_touched)
        return new

    # ------------------------------------------------------------------ #
    # Pipeline
    # ------------------------------------------------------------------ #

    def cycle(self, now: int) -> int:
        """Simulate one core cycle at core-local time ``now``.

        Returns the number of instructions committed this cycle.  Requests
        generated during the cycle are appended to :attr:`outbox`.
        """
        self.cycles += 1
        if self.finished or self.waiting_sync:
            self.sync_stall_cycles += self.waiting_sync
            self.stall_cycles += 1
            return 0
        if self._icache is not None:
            # _fetch_ready inlined (checked every cycle; almost always the
            # resident-line fast path).
            if self._ifetch_pending is not None:
                self.ifetch_stall_cycles += 1
                self.stall_cycles += 1
                return 0
            line = (
                self._code_base_line
                + (self._fetch_seq // self._instrs_per_line) % self._code_lines
            )
            if line != self._fetch_line:
                if self._icache.find(line) is not None:
                    self._fetch_line = line
                else:
                    self.outbox.append(
                        CoreRequest(RequestKind.IFETCH, line_addr=line)
                    )
                    self._ifetch_pending = line
                    self.ifetch_stall_cycles += 1
                    self.stall_cycles += 1
                    return 0

        committed = 0
        slots = self._issue_width
        window_size = self._window_size
        pending = self._pending_loads
        program = self.program
        l1 = self.l1
        line_bits = l1._line_bits
        outbox = self.outbox
        pages_touched = self.pages_touched
        page_shift = self._page_shift
        issue_seq = self._issue_seq
        while slots > 0:
            if pending and issue_seq - pending[0][0] >= window_size:
                break  # reorder window full behind the oldest load miss
            remaining = self._compute_remaining
            if remaining > 0:
                take = self._compute_rate
                if slots < take:
                    take = slots
                if remaining < take:
                    take = remaining
                self._compute_remaining = remaining - take
                issue_seq += take
                committed += take
                slots -= take
                if remaining > take:
                    # The burst's dependence chain caps this cycle's issue;
                    # later program-order ops cannot bypass it either.
                    break
                continue
            op = self._current_op
            if op is None:
                buffer = program._buffer
                op = buffer.popleft() if buffer else program.next_op()
                self._current_op = op
                if op is None:
                    break
            kind = op.kind
            if kind is _LOAD or kind is _STORE:
                # _issue_memory inlined: memory ops are ~half of all issued
                # instructions, and they never finish or block the thread.
                addr = op.arg1
                is_store = kind is _STORE
                if is_store:
                    pages_touched.add(addr >> page_shift)
                line_addr = addr >> line_bits
                outcome = l1.access_line(line_addr, is_store, now)
                if outcome is _HIT:
                    pass
                elif outcome is _MISS or outcome is _MERGED:
                    if outcome is _MISS:
                        outbox.append(
                            CoreRequest(_BUS, line_addr, l1.last_bus_op)
                        )
                    if not is_store:
                        pending.append((issue_seq, line_addr))
                else:
                    # BLOCKED or MSHR_FULL: leave the op in place and
                    # stall this cycle.
                    break
                issue_seq += 1
                self._current_op = None
                committed += 1
                slots -= 1
                continue
            if kind is _COMPUTE:
                # Burst setup: record the burst; its instructions issue via
                # the branch above (no slot is charged for the setup itself).
                self._compute_remaining = op.arg1
                self._compute_rate = _ILP_RATE[op.arg2]
                self._current_op = None
                continue
            self._issue_seq = issue_seq  # _issue_op reads/advances it
            if not self._issue_op(op, now):
                self._fetch_seq += committed
                self.instructions += committed
                if committed == 0:
                    self.stall_cycles += 1
                return committed  # structural stall
            issue_seq = self._issue_seq
            committed += 1
            slots -= 1
            if self.waiting_sync or self.finished:
                break

        self._issue_seq = issue_seq
        self.instructions += committed
        self._fetch_seq += committed
        if committed == 0:
            self.stall_cycles += 1
        return committed

    def _fetch_ready(self) -> bool:
        """True when the fetch line feeding the pipeline is resident.

        On an L1I miss, posts an IFETCH bus request and stalls fetch until
        :meth:`complete_ifill` delivers the line.
        """
        if self._ifetch_pending is not None:
            return False
        line = (
            self._code_base_line
            + (self._fetch_seq // self._instrs_per_line) % self._code_lines
        )
        if line == self._fetch_line:
            return True
        if self._icache.find(line) is not None:
            self._fetch_line = line
            return True
        self.outbox.append(CoreRequest(RequestKind.IFETCH, line_addr=line))
        self._ifetch_pending = line
        return False

    def _fetch_op(self) -> Optional[Op]:
        if self._current_op is None:
            self._current_op = self.program.next_op()
        return self._current_op

    def _consume_op(self) -> None:
        self._current_op = None

    def _issue_op(self, op: Op, now: int) -> bool:
        """Issue one non-compute op; return False to stop issuing."""
        kind = op.kind
        if kind in (OpKind.LOAD, OpKind.STORE):
            return self._issue_memory(op, now)
        if kind == OpKind.LOCK:
            self.outbox.append(CoreRequest(RequestKind.LOCK_ACQUIRE, sync_id=op.arg1))
            self.waiting_sync = True
            self._issue_seq += 1
            self._consume_op()
            return True
        if kind == OpKind.UNLOCK:
            self.outbox.append(CoreRequest(RequestKind.LOCK_RELEASE, sync_id=op.arg1))
            self._issue_seq += 1
            self._consume_op()
            return True
        if kind == OpKind.BARRIER:
            self.outbox.append(
                CoreRequest(RequestKind.BARRIER_ARRIVE, sync_id=op.arg1, participants=op.arg2)
            )
            self.waiting_sync = True
            self._issue_seq += 1
            self._consume_op()
            return True
        if kind == OpKind.THREAD_END:
            self.finished = True
            self._issue_seq += 1
            self._consume_op()
            return True
        raise SimulationError(f"core {self.core_id}: unknown op kind {kind}")

    def _issue_memory(self, op: Op, now: int) -> bool:
        addr = op.arg1
        is_store = op.kind == _STORE
        if is_store:
            self.pages_touched.add(addr >> self._page_shift)
        l1 = self.l1
        line_addr = addr >> l1._line_bits
        outcome = l1.access_line(line_addr, is_store, now)
        if outcome is _HIT:
            self._issue_seq += 1
            self._current_op = None
            return True
        if outcome is _MISS or outcome is _MERGED:
            if outcome is _MISS:
                self.outbox.append(
                    CoreRequest(RequestKind.BUS, line_addr=line_addr, bus_op=l1.last_bus_op)
                )
            if not is_store:
                self._pending_loads.append((self._issue_seq, line_addr))
            self._issue_seq += 1
            self._current_op = None
            return True
        # BLOCKED or MSHR_FULL: leave the op in place and stall this cycle.
        return False

    def _window_full(self) -> bool:
        if not self._pending_loads:
            return False
        oldest_seq = self._pending_loads[0][0]
        return self._issue_seq - oldest_seq >= self.config.window_size

    def commit_burst(self, max_cycles: int) -> Tuple[int, int]:
        """Commit up to ``max_cycles`` full-rate compute-burst cycles at once.

        A cycle qualifies when the whole cycle is the compute-burst branch
        of :meth:`cycle` and nothing else: the burst's dependence chain
        caps issue at ``k = min(issue_width, rate)`` instructions, no other
        op issues, no request is emitted, and the burst continues past the
        cycle.  Every counter advances exactly as ``m`` individual
        :meth:`cycle` calls would (bit-for-bit); the final burst cycle is
        always left to :meth:`cycle`, because its leftover slots may issue
        subsequent program ops.

        Returns ``(cycles_committed, instructions_committed)``.
        """
        remaining = self._compute_remaining
        if remaining <= 1 or self.finished or self.waiting_sync:
            return 0, 0
        k = self.config.issue_width
        if self._compute_rate < k:
            k = self._compute_rate
        m = (remaining - 1) // k
        if m > max_cycles:
            m = max_cycles
        if self._pending_loads:
            # Stop one cycle short of filling the reorder window.
            avail = self.config.window_size - (
                self._issue_seq - self._pending_loads[0][0]
            )
            if avail <= 0:
                return 0, 0  # stalled: the normal path accounts for it
            cap = (avail - 1) // k + 1
            if m > cap:
                m = cap
        if self._icache is not None:
            # Fetch must stay inside the currently-resident code line for
            # every bulk cycle; crossing a line boundary goes through
            # _fetch_ready (lookup side effects, possible IFETCH miss).
            if self._ifetch_pending is not None:
                return 0, 0
            ipl = self._instrs_per_line
            line = self._code_base_line + (self._fetch_seq // ipl) % self._code_lines
            if line != self._fetch_line:
                return 0, 0
            cap = (ipl - 1 - self._fetch_seq % ipl) // k + 1
            if m > cap:
                m = cap
        if m <= 0:
            return 0, 0
        instrs = m * k
        self._compute_remaining = remaining - instrs
        self._issue_seq += instrs
        self._fetch_seq += instrs
        self.instructions += instrs
        self.cycles += m
        return m, instrs

    def skip_stall_cycles(self, count: int) -> None:
        """Account for ``count`` cycles in which the pipeline is known to be
        fully stalled (the core thread fast-forwards them in bulk; the host
        cost model still charges per cycle, so host-time behaviour is
        unchanged)."""
        self.cycles += count
        self.stall_cycles += count
        if self.waiting_sync:
            self.sync_stall_cycles += count

    # ------------------------------------------------------------------ #
    # External completions (driven by InQ deliveries)
    # ------------------------------------------------------------------ #

    def complete_fill(self, line_addr: int, state: MesiState) -> None:
        """A bus transaction for ``line_addr`` completed; fill the L1."""
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.on_fill(self.core_id)
        victim_addr, victim_dirty = self.l1.fill(line_addr, state)
        if victim_dirty and victim_addr is not None:
            self.outbox.append(CoreRequest(RequestKind.WRITEBACK, line_addr=victim_addr))
        pending = self._pending_loads
        for entry in pending:
            if entry[1] == line_addr:
                # Rebuild only when the filled line is actually pending.
                self._pending_loads = deque(
                    e for e in pending if e[1] != line_addr
                )
                break

    def complete_sync(self) -> None:
        """A lock grant or barrier release arrived; resume the pipeline."""
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.on_sync_resume(self.core_id)
        self.waiting_sync = False

    def complete_ifill(self, line_addr: int) -> None:
        """An instruction-line fetch completed; resume instruction fetch."""
        if self._icache is None:  # pragma: no cover - defensive
            return
        self._icache.fill(line_addr, MesiState.SHARED)
        if self._ifetch_pending == line_addr:
            self._ifetch_pending = None
            self._fetch_line = line_addr

    def snoop_invalidate(self, line_addr: int) -> None:
        """Apply a remote invalidation to the L1."""
        self.l1.snoop_invalidate(line_addr)

    def snoop_downgrade(self, line_addr: int) -> None:
        """Apply a remote downgrade (M/E -> S) to the L1."""
        victim = self.l1.snoop_downgrade(line_addr)
        if victim == MesiState.MODIFIED:
            # Supplying dirty data to a GETS also updates the L2 copy; the
            # manager models that as part of the cache-to-cache transfer.
            pass

    # ------------------------------------------------------------------ #

    @property
    def blocked(self) -> bool:
        """True when no forward progress is possible without an InQ event.

        Compute never blocks; only an unfilled window-full condition, an
        MSHR conflict, or a pending sync grant can stall the core, and all
        of those clear via InQ deliveries.
        """
        if self.finished:
            return True
        if self.waiting_sync:
            return True
        return False

    def cpi(self) -> float:
        """Cycles per committed instruction so far."""
        return self.cycles / self.instructions if self.instructions else 0.0
