#!/usr/bin/env python
"""End-to-end smoke test for the simulation service, used by CI.

Boots a real ``repro serve`` daemon as a subprocess on a unix socket,
submits the golden reference case twice back to back (the second submit
must coalesce onto the first — same fingerprint, still in flight), and
checks the full service contract:

* both results carry the digest recorded in ``benchmarks/golden_kernel.json``
  for ``fft-cc-c4-s0.25`` — a report fetched over the wire is byte-identical
  to a local run;
* the daemon's ``health`` document reports exactly one dedup hit;
* ``drain`` completes cleanly and ``stop`` exits the daemon with code 0.

Exit code 0 on success; any assertion or timeout fails the CI job.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.harness.bench import BenchCase  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402

CASE = BenchCase("cc", 4, 0.25)
BOOT_DEADLINE_S = 30.0
RESULT_DEADLINE_S = 600.0


def wait_for_daemon(socket_path: pathlib.Path, deadline_s: float) -> None:
    """Poll until the daemon answers ``health`` (or give up loudly)."""
    deadline = time.monotonic() + deadline_s
    last_error = "socket never appeared"
    while time.monotonic() < deadline:
        if socket_path.exists():
            try:
                with ServiceClient(socket_path, timeout=5.0) as client:
                    client.health()
                return
            except ServiceError as exc:
                last_error = str(exc)
        time.sleep(0.1)
    raise SystemExit(f"daemon did not come up within {deadline_s:g}s: {last_error}")


def main() -> int:
    golden = json.loads((REPO / "benchmarks" / "golden_kernel.json").read_text())
    expected = golden[CASE.case_id]

    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as td:
        tmp = pathlib.Path(td)
        socket_path = tmp / "repro.sock"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        # A fresh cache: the first submit must actually run (not hit a
        # warm cache), so the duplicate has an in-flight leader to join.
        env["REPRO_CACHE_DIR"] = str(tmp / "cache")

        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", str(socket_path),
                "--wal", str(tmp / "jobs.wal"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            wait_for_daemon(socket_path, BOOT_DEADLINE_S)

            with ServiceClient(socket_path, timeout=RESULT_DEADLINE_S) as client:
                first = client.submit(CASE.spec())
                duplicate = client.submit(CASE.spec())
                print(f"submitted {first['job_id']} and {duplicate['job_id']} "
                      f"({CASE.case_id})")

                results = {
                    job["job_id"]: client.result(
                        job["job_id"], wait=True, timeout_s=RESULT_DEADLINE_S
                    )
                    for job in (first, duplicate)
                }
                for job_id, doc in results.items():
                    print(f"{job_id}: source={doc['source']} digest={doc['digest']}")
                    assert doc["digest"] == expected, (
                        f"{job_id} digest {doc['digest']} != golden {expected} "
                        f"for {CASE.case_id}"
                    )

                sources = sorted(doc["source"] for doc in results.values())
                assert sources == ["dedup", "run"], (
                    f"expected one executed job and one coalesced duplicate, "
                    f"got sources {sources}"
                )

                health = client.health()
                dedup_hits = health["metrics"]["counters"]["service.dedup_hits"]
                assert dedup_hits == 1, f"expected 1 dedup hit, got {dedup_hits}"
                assert health["jobs"].get("done") == 2, health["jobs"]

                drained = client.drain(wait=True, stop=True)
                assert drained["queue_depth"] == 0 and drained["inflight"] == 0

            code = daemon.wait(timeout=30)
            assert code == 0, f"daemon exited with {code}"
        finally:
            if daemon.poll() is None:
                daemon.kill()
            output = daemon.stdout.read() if daemon.stdout else ""
            if output:
                print("--- daemon output ---")
                print(output, end="")

    print(f"service smoke OK: golden digest matched twice, dedup_hits=1 "
          f"({CASE.case_id})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
