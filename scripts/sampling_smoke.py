"""CI smoke for sampled simulation (the `sampling-smoke` job).

Three digest- and statistics-gated checks, quarter-scale so the job
stays under a minute:

1. Rate 1.0 is the degenerate mode: for one case per scheme kind the
   sampled digest must equal ``benchmarks/golden_kernel.json`` bit for
   bit (sampling at full rate may not perturb the simulation at all).
2. Rate 0.25 must be honest: on the conservative and bounded cases the
   95% confidence intervals for CPI and violation rate must cover the
   full run's values.
3. Same sample seed twice must be byte-identical (digest and estimate).
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.harness.bench import smoke_matrix
from repro.sampling import SamplingConfig, run_sampled

#: One case per scheme kind that is legal under sampling, all at c4/s0.25.
DIGEST_CASE_IDS = ("fft-cc-c4-s0.25", "fft-bounded-c4-s0.25", "fft-adaptive-c4-s0.25")

#: Cases whose violation profile is stationary enough for CI coverage at
#: rate 0.25 (adaptive's controller drifts the rate over the run, so its
#: coverage is reported by the frontier experiment, not gated here).
COVERAGE_CASE_IDS = ("fft-cc-c4-s0.25", "fft-bounded-c4-s0.25")

SAMPLED = SamplingConfig(rate=0.25, interval=500, warmup=50)


def main() -> int:
    golden_path = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
    golden = json.loads((golden_path / "golden_kernel.json").read_text())
    cases = {case.case_id: case for case in smoke_matrix()}
    wanted = set(DIGEST_CASE_IDS) | set(COVERAGE_CASE_IDS)
    missing = [cid for cid in wanted if cid not in cases or cid not in golden]
    if missing:
        print(f"FAIL: unknown or ungolden case(s): {missing}")
        return 1

    failures = []

    for cid in DIGEST_CASE_IDS:
        result = run_sampled(cases[cid].spec(), SamplingConfig(rate=1.0))
        status = "ok" if result.digest == golden[cid] else "DRIFT"
        print(f"  {cid} [rate 1.0] digest {result.digest[:16]}... {status}")
        if result.digest != golden[cid]:
            failures.append((cid, "rate-1.0-digest", result.digest))

    for cid in COVERAGE_CASE_IDS:
        spec = cases[cid].spec()
        full = run_sampled(spec, SamplingConfig(rate=1.0)).report
        sampled = run_sampled(spec, SAMPLED)
        again = run_sampled(spec, SAMPLED)
        est = sampled.estimate
        cpi_ok = est.cpi.covers(full.cpi)
        vio_ok = est.violation_rate.covers(full.violation_rate)
        det_ok = sampled.digest == again.digest and est == again.estimate
        print(
            f"  {cid} [rate 0.25] measured {est.num_measured}/{est.num_intervals} "
            f"cpi {est.cpi.mean:.4f} (full {full.cpi:.4f}, "
            f"covers={'y' if cpi_ok else 'N'}) "
            f"vio covers={'y' if vio_ok else 'N'} "
            f"deterministic={'y' if det_ok else 'N'}"
        )
        if not cpi_ok:
            failures.append((cid, "cpi-ci-misses-full-run", est.cpi.to_dict()))
        if not vio_ok:
            failures.append(
                (cid, "violation-ci-misses-full-run", est.violation_rate.to_dict())
            )
        if not det_ok:
            failures.append((cid, "same-seed-not-byte-identical", sampled.digest))

    if failures:
        print(f"FAIL: {len(failures)} sampling smoke failure(s): {failures}")
        return 1
    print(
        f"sampling smoke: {len(DIGEST_CASE_IDS)} rate-1.0 digests match golden, "
        f"{len(COVERAGE_CASE_IDS)} rate-0.25 runs cover full-run CPI + "
        "violation rate and are seed-deterministic"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
