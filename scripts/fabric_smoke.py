#!/usr/bin/env python
"""End-to-end smoke test for the distributed fabric, used by CI.

Boots a real ``repro serve --coordinator`` subprocess plus two
``repro worker`` subprocesses sharing one report store, then checks the
fleet contract the README promises:

* the quick golden cases (``fft-cc-c4-s0.25``, ``fft-bounded-c4-s0.25``,
  ``fft-adaptive-c4-s0.25``) are each submitted twice — every result must
  carry the digest recorded in ``benchmarks/golden_kernel.json``, and the
  duplicate submissions must coalesce at the coordinator (3 dedup hits);
* one worker is SIGKILLed while it is running a job — the coordinator
  must evict it over the dead connection, re-dispatch its jobs to the
  survivor, and the re-dispatched results must still match the golden
  digests bit for bit;
* the surviving worker exits 0 on SIGTERM (deregister + drain) and the
  coordinator exits 0 on ``drain --stop``.

Exit code 0 on success; any assertion or timeout fails the CI job.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.harness.bench import BenchCase  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402

CASES = [BenchCase(scheme, 4, 0.25) for scheme in ("cc", "bounded", "adaptive")]
BOOT_DEADLINE_S = 30.0
RESULT_DEADLINE_S = 600.0


def wait_for_health(socket_path: pathlib.Path, deadline_s: float) -> None:
    deadline = time.monotonic() + deadline_s
    last_error = "socket never appeared"
    while time.monotonic() < deadline:
        if socket_path.exists():
            try:
                with ServiceClient(socket_path, timeout=5.0) as client:
                    client.health()
                return
            except ServiceError as exc:
                last_error = str(exc)
        time.sleep(0.1)
    raise SystemExit(f"coordinator did not come up within {deadline_s:g}s: "
                     f"{last_error}")


def wait_for_workers(socket_path: pathlib.Path, count: int,
                     deadline_s: float) -> None:
    deadline = time.monotonic() + deadline_s
    alive = -1
    while time.monotonic() < deadline:
        with ServiceClient(socket_path, timeout=5.0) as client:
            alive = client.health()["workers_alive"]
        if alive >= count:
            return
        time.sleep(0.1)
    raise SystemExit(f"only {alive}/{count} workers registered within "
                     f"{deadline_s:g}s")


def spawn(args, env):
    return subprocess.Popen(
        args, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )


def drain_output(name, process):
    output = process.stdout.read() if process.stdout else ""
    if output:
        print(f"--- {name} output ---")
        print(output, end="")


def main() -> int:
    golden = json.loads((REPO / "benchmarks" / "golden_kernel.json").read_text())

    with tempfile.TemporaryDirectory(prefix="repro-fabric-smoke-") as td:
        tmp = pathlib.Path(td)
        socket_path = tmp / "coordinator.sock"
        store = tmp / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")

        coordinator = spawn(
            [
                sys.executable, "-m", "repro", "serve", "--coordinator",
                "--socket", str(socket_path),
                "--cache-dir", str(store),
                "--wal", str(tmp / "coordinator.wal"),
                "--heartbeat-timeout", "2.0",
            ],
            env,
        )
        workers = {}
        survivors = []
        try:
            wait_for_health(socket_path, BOOT_DEADLINE_S)
            for worker_id in ("w-a", "w-b"):
                workers[worker_id] = spawn(
                    [
                        sys.executable, "-m", "repro", "worker",
                        "--coordinator-socket", str(socket_path),
                        "--socket", str(tmp / f"{worker_id}.sock"),
                        "--cache-dir", str(store),
                        "--wal", str(tmp / f"{worker_id}.wal"),
                        "--worker-id", worker_id,
                    ],
                    env,
                )
            wait_for_workers(socket_path, 2, BOOT_DEADLINE_S)

            with ServiceClient(socket_path, timeout=RESULT_DEADLINE_S) as client:
                submitted = []  # (case, job_id) — each case twice
                for case in CASES:
                    for _ in range(2):
                        accepted = client.submit(case.spec())
                        submitted.append((case, accepted["job_id"]))
                print(f"submitted {len(submitted)} jobs "
                      f"({', '.join(c.case_id for c in CASES)}, each twice)")

                # Kill whichever worker is first seen running a job.
                victim = None
                deadline = time.monotonic() + RESULT_DEADLINE_S
                while victim is None and time.monotonic() < deadline:
                    for _, job_id in submitted:
                        status = client.status(job_id)
                        worker_id = status.get("worker")
                        if status["state"] == "running" and worker_id in workers:
                            victim = worker_id
                            break
                    else:
                        time.sleep(0.05)
                assert victim, "no job was ever observed running on a worker"
                workers[victim].send_signal(signal.SIGKILL)
                workers[victim].wait(timeout=10)
                print(f"killed {victim} mid-run (SIGKILL)")
                survivors = [w for w in workers if w != victim]

                for case, job_id in submitted:
                    doc = client.result(
                        job_id, wait=True, timeout_s=RESULT_DEADLINE_S,
                        report=False,
                    )
                    expected = golden[case.case_id]
                    assert doc["digest"] == expected, (
                        f"{job_id} ({case.case_id}): digest {doc['digest']} "
                        f"!= golden {expected}"
                    )
                    print(f"{job_id}: {case.case_id} source={doc['source']} "
                          f"worker={doc.get('worker')} digest ok")

                fabric = client.request("fabric")
                counters = fabric["metrics"]["counters"]
                assert counters["fabric.dedup_hits"] == len(CASES), counters
                assert counters["fabric.evictions"] >= 1, counters
                assert counters["fabric.redispatched"] >= 1, counters
                states = {w["worker_id"]: w["state"] for w in fabric["workers"]}
                assert states[victim] == "evicted", states
                assert all(states[w] == "alive" for w in survivors), states
                print(f"fabric counters ok: dedup_hits={counters['fabric.dedup_hits']} "
                      f"evictions={counters['fabric.evictions']} "
                      f"redispatched={counters['fabric.redispatched']}")

                for worker_id in survivors:
                    workers[worker_id].send_signal(signal.SIGTERM)
                    code = workers[worker_id].wait(timeout=60)
                    assert code == 0, f"{worker_id} exited with {code}"

                drained = client.drain(wait=True, stop=True)
                assert drained["queue_depth"] == 0, drained

            code = coordinator.wait(timeout=30)
            assert code == 0, f"coordinator exited with {code}"
        finally:
            for name, process in list(workers.items()) + [
                ("coordinator", coordinator)
            ]:
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)
                drain_output(name, process)

    print(f"fabric smoke OK: {len(CASES)} golden cases × 2, worker killed "
          f"mid-run, every digest matched after re-dispatch")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
