"""CI smoke for time-parallel single runs (the `timepar-smoke` job).

Runs three golden matrix cases (conservative, bounded slack, and
speculative — the last exercises checkpoint/rollback inside epochs)
through ``run_time_parallel`` at N=2, cold pass then warm pass, and
requires every digest to match ``benchmarks/golden_kernel.json`` bit for
bit.  This is the feature's only contract: epoch pipelining may change
wall-clock, never the report.
"""

import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.harness.bench import full_matrix
from repro.harness.timepar import run_time_parallel

#: Same trio the sanitizer smoke gates on: one plain scheme, the README
#: reference scheme, and the rollback-heavy speculative scheme.
CASE_IDS = ("fft-cc-c4-s0.5", "fft-bounded-c8-s0.5", "fft-speculative-c4-s0.5")
EPOCHS = 2


def main() -> int:
    golden_path = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
    golden = json.loads((golden_path / "golden_kernel.json").read_text())
    cases = {case.case_id: case for case in full_matrix()}
    missing = [cid for cid in CASE_IDS if cid not in cases or cid not in golden]
    if missing:
        print(f"FAIL: unknown or ungolden case(s): {missing}")
        return 1

    failures = []
    with tempfile.TemporaryDirectory(prefix="timepar-smoke-") as root:
        for cid in CASE_IDS:
            spec = cases[cid].spec()
            cold = run_time_parallel(spec, epochs=EPOCHS, cache_root=root)
            warm = run_time_parallel(spec, epochs=EPOCHS, cache_root=root)
            for mode, result in (("cold", cold), ("warm", warm)):
                status = "ok" if result.digest == golden[cid] else "DRIFT"
                print(
                    f"  {cid} [{mode}] digest {result.digest[:16]}... {status} "
                    f"(mode={result.stats.mode}, diverged={result.stats.diverged})"
                )
                if result.digest != golden[cid]:
                    failures.append((cid, mode, result.digest))
            if warm.stats.mode == "warm" and warm.stats.diverged:
                failures.append((cid, "warm-diverged", warm.stats.diverged))

    if failures:
        print(f"FAIL: {len(failures)} timepar digest mismatch(es): {failures}")
        return 1
    print(f"timepar smoke: {len(CASE_IDS)} cases x cold+warm at N={EPOCHS}, "
          "all digests match golden")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
