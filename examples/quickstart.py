#!/usr/bin/env python3
"""Quickstart: simulate an 8-core CMP under three slack schemes.

Runs the FFT kernel on the paper's 8-core target (section 2.1) under
cycle-by-cycle simulation (the accuracy gold standard), bounded slack, and
unbounded slack, and reports the speed/accuracy trade-off that motivates
the whole paper.

Usage::

    python examples/quickstart.py [scale]
"""

import sys

from repro import Simulation, SlackConfig
from repro.workloads import make_workload


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    workload = make_workload("fft", num_threads=8, scale=scale)

    print(f"Simulating {workload.name} ({workload.params}) on the paper's 8-core CMP\n")

    gold = Simulation(workload, scheme=SlackConfig(bound=0)).run()
    print(f"cycle-by-cycle (gold standard):")
    print(f"  target execution : {gold.target_cycles} cycles, CPI {gold.cpi:.3f}")
    print(f"  simulation time  : {gold.sim_time_s:.3f} s (modeled host)")
    print(f"  violations       : {sum(gold.violation_counts.values())}\n")

    for bound in (4, None):
        report = Simulation(workload, scheme=SlackConfig(bound=bound)).run()
        label = "unbounded slack" if bound is None else f"bounded slack S{bound}"
        print(f"{label}:")
        print(f"  target execution : {report.target_cycles} cycles")
        print(f"  simulation time  : {report.sim_time_s:.3f} s "
              f"-> {report.speedup_over(gold):.2f}x speedup")
        print(f"  execution error  : {report.execution_time_error(gold):.2%}")
        print(f"  violations       : {report.violation_counts} "
              f"(rate {report.violation_rate:.5f}/cycle)\n")

    print("Slack trades a controlled accuracy loss for parallel-simulation speed —")
    print("run examples/adaptive_tuning.py to see the paper's feedback controller.")


if __name__ == "__main__":
    main()
