#!/usr/bin/env python3
"""Adaptive slack: hold a target violation rate with a feedback loop.

Reproduces the section-4 experiment on one benchmark: sweep the target
violation rate and watch the controller trade simulation speed against the
measured rate, with bounded-slack runs for comparison (Figure 4's series).

Usage::

    python examples/adaptive_tuning.py [benchmark] [scale]
"""

import sys

from repro import AdaptiveConfig, Simulation, SlackConfig
from repro.workloads import make_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "barnes"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    workload = make_workload(name, num_threads=8, scale=scale)

    gold = Simulation(workload, scheme=SlackConfig(bound=0)).run()
    print(f"{name}: cycle-by-cycle reference {gold.sim_time_s:.3f} s\n")

    print("adaptive slack (5% violation band):")
    print(f"{'target rate':>12} {'measured':>10} {'sim time':>9} {'speedup':>8} "
          f"{'avg bound':>10} {'adjusts':>8}")
    for target in (2e-4, 6e-4, 1e-3, 2e-3, 4e-3):
        report = Simulation(
            workload,
            scheme=AdaptiveConfig(target_rate=target, band=0.05, adjust_period=250),
        ).run()
        print(
            f"{target:>12.4%} {report.violation_rate:>10.5f} "
            f"{report.sim_time_s:>8.3f}s {report.speedup_over(gold):>7.2f}x "
            f"{report.average_bound:>10.2f} {report.bound_adjustments:>8}"
        )

    print("\nbounded slack for comparison (no safety net, no control overhead):")
    print(f"{'bound':>12} {'measured':>10} {'sim time':>9} {'speedup':>8}")
    for bound in (1, 2, 4, 8):
        report = Simulation(workload, scheme=SlackConfig(bound=bound)).run()
        print(
            f"{'S' + str(bound):>12} {report.violation_rate:>10.5f} "
            f"{report.sim_time_s:>8.3f}s {report.speedup_over(gold):>7.2f}x"
        )

    print("\nAt a similar measured rate, bounded slack is faster — the paper's")
    print("price of the adaptive 'safety net' (section 4).")


if __name__ == "__main__":
    main()
