#!/usr/bin/env python3
"""Build a custom workload against the public program API.

Demonstrates the snapshot-able program IR (Emit/Loop/If) by writing a
small producer-consumer pipeline from scratch: even threads produce into
per-pair shared buffers under a lock, odd threads consume, with a barrier
between phases — then compares slack schemes on it.

Usage::

    python examples/custom_workload.py
"""

from repro import Simulation, SlackConfig
from repro.isa import Emit, Loop, barrier, compute, load, lock, store, unlock
from repro.isa.operations import ILP_HIGH, ILP_MED
from repro.workloads.base import LINE, AddressSpace, Workload

NUM_THREADS = 8
ITEMS = 64
PHASES = 4


def build_pipeline() -> Workload:
    """A producer->consumer pipeline: pairs share a lock-protected buffer."""
    space = AddressSpace()
    buffers = [space.alloc(f"buffer{p}", ITEMS * LINE) for p in range(NUM_THREADS // 2)]
    private = [space.alloc(f"private{t}", 32 * LINE) for t in range(NUM_THREADS)]

    def builder(tid: int):
        pair = tid // 2
        producing = tid % 2 == 0
        buffer = buffers[pair]
        mine = private[tid]

        def produce(ctx):
            item = ctx["i"]
            return [
                load(mine + (item % 32) * LINE),
                compute(8, ILP_HIGH),
                lock(pair),
                store(buffer + item * LINE),
                unlock(pair),
            ]

        def consume(ctx):
            item = ctx["i"]
            return [
                lock(pair),
                load(buffer + item * LINE),
                unlock(pair),
                compute(12, ILP_MED),
                store(mine + (item % 32) * LINE),
            ]

        phase_body = [
            Loop("i", ITEMS, [Emit(produce if producing else consume)]),
            Emit(lambda ctx: barrier(0, NUM_THREADS)),
        ]
        return [Loop("phase", PHASES, phase_body)]

    return Workload("pipeline", NUM_THREADS, builder, params={"items": ITEMS})


def main() -> None:
    workload = build_pipeline()
    print(f"custom workload: {workload.name}, {workload.num_threads} threads\n")

    gold = Simulation(workload, scheme=SlackConfig(bound=0)).run()
    print(f"cycle-by-cycle : {gold.target_cycles} cycles, "
          f"{gold.sim_time_s:.3f} s, CPI {gold.cpi:.2f}")

    for bound in (4, 16, None):
        report = Simulation(workload, scheme=SlackConfig(bound=bound)).run()
        label = "SU " if bound is None else f"S{bound:<3d}"
        print(f"slack {label}     : {report.speedup_over(gold):.2f}x speedup, "
              f"{report.execution_time_error(gold):.2%} error, "
              f"violations {report.violation_counts}")

    print("\nLock-heavy pipelines violate on the bus constantly — compare with")
    print("the compute-heavy kernels in repro.workloads.")


if __name__ == "__main__":
    main()
