#!/usr/bin/env python3
"""Speculative slack: checkpoint, roll back on violations, replay.

Reproduces the section-5 study on one benchmark, and goes one step beyond
the paper: SlackSim only *estimated* full speculation with the analytical
model T_s = (1-F)*T_cpt + F*D_r*T_cpt/I + F*T_cc; this reproduction also
*executes* it (checkpoint -> detect -> rollback -> cycle-by-cycle replay)
so the model can be validated against a measurement.

Usage::

    python examples/speculative_study.py [benchmark] [scale]
"""

import sys

from repro import (
    AdaptiveConfig,
    CheckpointConfig,
    Simulation,
    SlackConfig,
    SpeculativeConfig,
    SpeculativeModelInputs,
    speculative_time,
)
from repro.workloads import make_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "lu"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0
    interval = 5000
    workload = make_workload(name, num_threads=8, scale=scale)
    base = AdaptiveConfig(target_rate=4e-4, band=0.05, adjust_period=250)

    gold = Simulation(workload, scheme=SlackConfig(bound=0)).run()
    print(f"{name}: T_cc = {gold.sim_time_s:.3f} s (cycle-by-cycle)\n")

    # 1. Adaptive slack with periodic checkpoints, no rollback: measures
    #    T_cpt, F, and D_r (how the paper populated Tables 2-4).
    checked = Simulation(
        workload, scheme=base, checkpoint=CheckpointConfig(interval=interval)
    ).run()
    f = checked.fraction_intervals_violating()
    d_r = checked.mean_first_violation_distance() or 0.0
    print(f"adaptive + checkpoints every {interval} cycles:")
    print(f"  T_cpt = {checked.sim_time_s:.3f} s  ({checked.checkpoints} checkpoints, "
          f"{checked.checkpoint_cost_s:.3f} s of fork+COW cost)")
    print(f"  F     = {f:.2%} of intervals violate")
    print(f"  D_r   = {d_r:.0f} cycles to the first violation\n")

    # 2. The paper's analytical estimate.
    estimate = speculative_time(
        SpeculativeModelInputs(
            t_cc=gold.sim_time_s,
            t_cpt=checked.sim_time_s,
            fraction_violating=f,
            rollback_distance=min(d_r, interval),
            interval=interval,
        )
    )
    print(f"analytical model:  T_s = {estimate:.3f} s "
          f"({estimate / gold.sim_time_s:.2f}x of cycle-by-cycle)")

    # 3. The full mechanism, actually executed.
    spec = Simulation(
        workload,
        scheme=SpeculativeConfig(
            base=base, checkpoint=CheckpointConfig(interval=interval)
        ),
    ).run()
    print(f"measured:          T_s = {spec.sim_time_s:.3f} s "
          f"({spec.sim_time_s / gold.sim_time_s:.2f}x of cycle-by-cycle)")
    print(f"  {spec.rollbacks} rollbacks, {spec.wasted_target_cycles} wasted cycles, "
          f"{spec.replay_target_cycles} replayed cycle-by-cycle")
    print(f"  committed execution is violation-free: {spec.violation_counts}\n")

    verdict = "does not pay" if spec.sim_time_s > gold.sim_time_s else "pays off"
    print(f"Conclusion (matches the paper): at this violation rate, speculation "
          f"{verdict} versus plain cycle-by-cycle simulation.")


if __name__ == "__main__":
    main()
