#!/usr/bin/env python3
"""Trace capture/replay and experiment export.

1. Records the Barnes kernel's architectural trace to a file, replays it
   as a trace-driven workload, and shows the runs are identical.
2. Runs a small Figure-3-style sweep and exports it as CSV, JSON, and an
   ASCII scatter plot.
3. Re-runs Barnes with a telemetry session attached: writes a
   Perfetto-loadable Chrome trace plus a metrics/time-series document,
   and shows the report digest is identical to the untraced run.

Usage::

    python examples/trace_and_export.py [output-dir]
"""

import pathlib
import sys

from repro import Simulation, SlackConfig, TelemetrySession
from repro.harness import ExperimentRunner, figure3
from repro.harness.export import ascii_scatter, figure_series, to_csv, to_json
from repro.isa.trace import record_workload, trace_workload
from repro.telemetry import summarize_trace
from repro.util import SplitMix64
from repro.workloads import make_workload


def trace_demo(out_dir: pathlib.Path) -> None:
    workload = make_workload("barnes", num_threads=8, scale=0.5)
    seed = 12345

    # A Simulation derives the workload seed from its own: reproduce that
    # derivation so the captured trace matches the execution-driven run.
    seeds = SplitMix64(seed)
    seeds.next_u64()  # the scheme-policy seed is drawn first
    trace_text = record_workload(workload, seed=seeds.next_u64())
    trace_path = out_dir / "barnes.trace"
    trace_path.write_text(trace_text)
    print(f"recorded {len(trace_text.splitlines())} trace records -> {trace_path}")

    direct = Simulation(workload, scheme=SlackConfig(bound=4), seed=seed).run()
    replayed = Simulation(
        trace_workload(trace_text), scheme=SlackConfig(bound=4), seed=seed
    ).run()
    print(f"execution-driven: {direct.target_cycles} cycles")
    print(f"trace-driven    : {replayed.target_cycles} cycles "
          f"(identical: {direct.target_cycles == replayed.target_cycles})\n")


def export_demo(out_dir: pathlib.Path) -> None:
    runner = ExperimentRunner()
    result = figure3(
        runner, bounds=(1, 4, 16, 60, 250), benchmarks=("barnes",), scale=0.5
    )
    (out_dir / "figure3.csv").write_text(to_csv(result))
    (out_dir / "figure3.json").write_text(to_json(result))
    print(f"wrote {out_dir / 'figure3.csv'} and .json\n")
    print(
        ascii_scatter(
            figure_series(result, "barnes/bus", "barnes/map"),
            x_label="slack bound",
            y_label="violations/cycle",
            log_x=True,
            title="Figure 3 (barnes, scaled): violation rates vs slack bound",
        )
    )


def telemetry_demo(out_dir: pathlib.Path) -> None:
    workload = make_workload("barnes", num_threads=8, scale=0.5)
    baseline = Simulation(workload, scheme=SlackConfig(bound=4), seed=12345).run()

    session = TelemetrySession(sample_period=1000)
    traced = Simulation(
        workload, scheme=SlackConfig(bound=4), seed=12345, telemetry=session
    ).run()

    trace_path = out_dir / "barnes_telemetry.json"
    metrics_path = out_dir / "barnes_metrics.json"
    session.tracer.write_chrome(trace_path)
    session.write_metrics(
        metrics_path, meta={"benchmark": "barnes", "digest": traced.digest()}
    )
    print(f"\nwrote {trace_path} (open in Perfetto / chrome://tracing) "
          f"and {metrics_path}")
    print("telemetry is observation-only: digest identical to untraced run:",
          traced.digest() == baseline.digest())
    print("\n" + summarize_trace(session.tracer.chrome_doc()))


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_demo(out_dir)
    export_demo(out_dir)
    telemetry_demo(out_dir)


if __name__ == "__main__":
    main()
