#!/usr/bin/env python3
"""Quickstart for the simulation job service (`repro.service`).

Boots the daemon in-process on a unix socket, then walks the whole job
lifecycle through the Python client:

* submit two *identical* specs — the duplicate coalesces onto the
  in-flight run (one execution, two subscribers) — plus one distinct spec;
* poll job state and fetch digest-verified reports;
* read the ``health`` document (queue, WAL, telemetry counters);
* drain and stop cleanly.

The same flow works across processes: run ``python -m repro serve`` in
one shell and ``python -m repro submit ...`` in another.

Usage::

    python examples/service_quickstart.py [scale]
"""

import sys
import tempfile
from pathlib import Path

from repro.config import SlackConfig, paper_host_config, paper_target_config
from repro.harness.cache import RunSpec
from repro.service import ServiceClient, ServiceConfig, ServiceDaemon


def make_spec(seed: int, scale: float) -> RunSpec:
    """A fully-resolved spec: the service runs exactly what you send."""
    return RunSpec(
        benchmark="fft",
        scheme=SlackConfig(bound=8),
        scale=scale,
        checkpoint=None,
        detection=True,
        seed=seed,
        num_threads=4,
        target=paper_target_config(num_cores=4),
        host=paper_host_config(),
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25

    with tempfile.TemporaryDirectory(prefix="repro-service-") as td:
        tmp = Path(td)
        config = ServiceConfig(
            socket_path=tmp / "repro.sock",
            cache_dir=tmp / "cache",
            wal_path=tmp / "jobs.wal",
        )
        daemon = ServiceDaemon(config).start()
        print(f"daemon listening on {daemon.address} (WAL: {config.wal_path})\n")

        try:
            with ServiceClient(config.socket_path) as client:
                # Two identical submissions plus one different seed.  The
                # duplicate never executes: it subscribes to the leader.
                jobs = [
                    client.submit(make_spec(seed=1, scale=scale)),
                    client.submit(make_spec(seed=1, scale=scale)),  # duplicate
                    client.submit(make_spec(seed=2, scale=scale)),
                ]
                for job in jobs:
                    print(f"submitted {job['job_id']} (state {job['state']})")

                print()
                for job in jobs:
                    doc = client.result(job["job_id"], wait=True, timeout_s=300)
                    report = client.fetch_report(job["job_id"])  # digest-verified
                    print(f"{job['job_id']}: source={doc['source']:<5} "
                          f"digest={doc['digest'][:16]}... "
                          f"target={report.target_cycles} cycles")

                health = client.health()
                counters = health["metrics"]["counters"]
                print(f"\nhealth: {health['jobs']} | "
                      f"dedup_hits={counters.get('service.dedup_hits', 0)} "
                      f"wal_jobs={health['wal']['jobs']}")

                drained = client.drain(wait=True, stop=True)
                print(f"drained (queue={drained['queue_depth']}, "
                      f"inflight={drained['inflight']}); daemon stopping")
        finally:
            daemon.stop()

    print("\nThe first two digests match: identical specs are one execution.")
    print("Try `python -m repro serve` + `python -m repro submit fft --wait`.")


if __name__ == "__main__":
    main()
