"""Time-parallel single-run benchmark: speedup and divergence curves.

Measures, on the long bounded/adaptive cases, what epoch pipelining
(``repro.harness.timepar``) buys for one simulation:

- **serial** wall (the baseline every experiment table is floored by);
- **cold** wall (the chained recording pass: serial + capture overhead);
- **warm** wall at N epochs with a real worker pool (*measured* — on a
  single-CPU host this is bounded by contention, and the stamped host
  fingerprint makes that visible);
- **projected critical-path speedup**: ``serial_wall / max(epoch walls)``
  with per-epoch walls measured contention-free (epochs executed one at a
  time) — what the same chain stitches to when each epoch has its own
  CPU, which is the deployment this feature targets (the paper simulates
  CMPs *on* CMPs);
- **divergence recovery**: the epoch-state cache is deliberately
  mis-primed and the measured divergence / re-execution rate and its
  wall-clock cost are recorded.

Every digest is asserted against the serial run: a speedup that changes
results is a bug, not a result.  Writes ``BENCH_timepar.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.config import (
    AdaptiveConfig,
    SlackConfig,
    paper_host_config,
    paper_target_config,
)
from repro.harness.cache import RunSpec
from repro.harness.hostinfo import host_fingerprint
from repro.harness.pool import execute_spec
from repro.harness.timepar import EpochStateCache, _plan_boundaries, run_time_parallel

CASES = {
    "fft-bounded-c8-s2": lambda: RunSpec(
        benchmark="fft",
        scheme=SlackConfig(bound=16),
        scale=2.0,
        checkpoint=None,
        detection=True,
        seed=12345,
        num_threads=8,
        target=paper_target_config(num_cores=8),
        host=paper_host_config(),
    ),
    "fft-adaptive-c8-s2": lambda: RunSpec(
        benchmark="fft",
        scheme=AdaptiveConfig(target_rate=1e-3, adjust_period=250),
        scale=2.0,
        checkpoint=None,
        detection=True,
        seed=12345,
        num_threads=8,
        target=paper_target_config(num_cores=8),
        host=paper_host_config(),
    ),
}

EPOCH_COUNTS = (2, 4, 8)


def bench_case(case_id: str, root: pathlib.Path) -> Dict[str, Any]:
    spec = CASES[case_id]()
    start = time.perf_counter()
    serial_report, _ = execute_spec(spec)
    serial_wall = time.perf_counter() - start
    digest = serial_report.digest()

    start = time.perf_counter()
    cold = run_time_parallel(spec, epochs=max(EPOCH_COUNTS), cache_root=root)
    cold_wall = time.perf_counter() - start
    assert cold.digest == digest, f"{case_id}: cold digest drift"

    curve: List[Dict[str, Any]] = []
    for n in EPOCH_COUNTS:
        # Contention-free pass: epochs one at a time, so each epoch wall
        # is its true compute cost — the projection input.
        start = time.perf_counter()
        probe = run_time_parallel(spec, epochs=n, jobs=1, cache_root=root)
        probe_wall = time.perf_counter() - start
        assert probe.digest == digest, f"{case_id}: warm digest drift at N={n}"
        # Pool pass: real worker processes, measured end to end.
        start = time.perf_counter()
        warm = run_time_parallel(spec, epochs=n, jobs=n, cache_root=root)
        warm_wall = time.perf_counter() - start
        assert warm.digest == digest, f"{case_id}: pooled digest drift at N={n}"
        critical = max(probe.stats.epoch_walls) if probe.stats.epoch_walls else probe_wall
        curve.append(
            {
                "epochs": n,
                "epochs_launched": warm.stats.launched,
                "boundaries": warm.stats.boundaries,
                "hit_rate": warm.stats.hit_rate,
                "diverged": warm.stats.diverged,
                "epoch_walls_s": [round(w, 4) for w in probe.stats.epoch_walls],
                "warm_wall_s": round(warm_wall, 4),
                "speedup_measured": round(serial_wall / warm_wall, 2),
                "speedup_projected_critical_path": round(serial_wall / critical, 2),
            }
        )
        print(
            f"  {case_id} N={n}: measured {curve[-1]['speedup_measured']}x, "
            f"projected {curve[-1]['speedup_projected_critical_path']}x "
            f"(critical epoch {critical:.2f}s / serial {serial_wall:.2f}s)"
        )

    # Divergence: mis-prime one interior prediction and measure recovery.
    cache = EpochStateCache(spec, root=root)
    meta = cache.load_meta()
    divergence: Optional[Dict[str, Any]] = None
    bounds = _plan_boundaries(meta, 4) if meta else []
    if len(bounds) >= 2:
        cache.store_state(bounds[1], cache.load_state(bounds[0]))
        start = time.perf_counter()
        recovered = run_time_parallel(spec, epochs=4, jobs=1, cache_root=root)
        recover_wall = time.perf_counter() - start
        assert recovered.digest == digest, f"{case_id}: recovery digest drift"
        stats = recovered.stats
        divergence = {
            "mis_primed": 1,
            "predicted": stats.predicted,
            "diverged": stats.diverged,
            "reexecuted": stats.reexecuted,
            "divergence_rate": round(stats.diverged / stats.predicted, 3)
            if stats.predicted
            else 0.0,
            "recovery_wall_s": round(recover_wall, 4),
        }
        print(
            f"  {case_id} divergence: {stats.diverged}/{stats.predicted} "
            f"diverged, {stats.reexecuted} re-executed, digest still exact"
        )

    return {
        "case": case_id,
        "target_cycles": serial_report.target_cycles,
        "digest": digest,
        "serial_wall_s": round(serial_wall, 4),
        "cold_wall_s": round(cold_wall, 4),
        "cold_overhead": round(cold_wall / serial_wall, 2),
        "curve": curve,
        "divergence": divergence,
    }


def run_bench_timepar(output: Optional[str] = "BENCH_timepar.json") -> Dict[str, Any]:
    root = pathlib.Path(tempfile.mkdtemp(prefix="bench-timepar-"))
    try:
        cases = [bench_case(case_id, root) for case_id in CASES]
    finally:
        shutil.rmtree(root, ignore_errors=True)
    best = max(
        (point for case in cases for point in case["curve"]),
        key=lambda p: p["speedup_projected_critical_path"],
    )
    doc = {
        "host": host_fingerprint(),
        "benchmark": "timepar",
        "note": (
            "speedup_measured is the end-to-end pooled wall on THIS host "
            "(see host.cpu_count); speedup_projected_critical_path is "
            "serial_wall / slowest contention-free epoch — the stitched "
            "wall when each epoch gets its own CPU.  All digests are "
            "asserted bit-identical to the serial run."
        ),
        "best_projected_speedup": best["speedup_projected_critical_path"],
        "cases": cases,
    }
    if output:
        pathlib.Path(output).write_text(json.dumps(doc, indent=2) + "\n")
        print(
            f"wrote {output} (best projected speedup "
            f"{doc['best_projected_speedup']}x on {host_fingerprint()['cpu_count']} CPU(s))"
        )
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_timepar.json")
    args = parser.parse_args(argv)
    run_bench_timepar(args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
