"""E2 (extension): Graphite-style Lax-P2P synchronization.

The paper's section 6 flags Lax-P2P as "an interesting approach, which we
plan to explore further".  Shape checks: P2P lands in the slack family —
faster than cycle-by-cycle, accuracy comparable to bounded slack.
"""

from repro.harness import p2p_comparison


def test_p2p(benchmark, runner):
    result = benchmark.pedantic(lambda: p2p_comparison(runner), rounds=1, iterations=1)
    print()
    print(result.render())

    by_scheme = {}
    for name, scheme, speedup, error, rate in result.rows:
        by_scheme.setdefault(scheme, []).append((name, speedup, error))

    p2p_rows = [v for k, v in by_scheme.items() if k.startswith("p2p")][0]
    for name, speedup, error in p2p_rows:
        assert speedup > 1.3, f"{name}: P2P should clearly beat cycle-by-cycle"
        assert error < 0.35, f"{name}: P2P error {error:.2%} out of family"
