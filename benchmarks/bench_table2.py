"""Table 2: simulation times of CC, SU, Adaptive, and checkpointing runs.

Checks the paper's reported shape:

- unbounded slack is ~2-3x faster than cycle-by-cycle;
- adaptive slack sits between the two;
- checkpointing every 5K/10K (scaled) cycles costs more than CC;
- 50K/100K intervals land near the plain adaptive time.
"""

from repro.harness import table2
from repro.harness.experiments import INTERVALS


def test_table2(benchmark, runner):
    result = benchmark.pedantic(lambda: table2(runner), rounds=1, iterations=1)
    print()
    print(result.render())

    for row in result.rows:
        name, cc, su, adaptive = row[0], row[1], row[2], row[3]
        ckpt = dict(zip(INTERVALS, row[4:]))
        speedup = cc / su
        assert 1.5 <= speedup <= 5.0, f"{name}: SU speedup {speedup:.2f} off-shape"
        assert su < adaptive < cc, f"{name}: adaptive must sit between SU and CC"
        # Frequent checkpoints are slower than CC...
        assert ckpt[500] > cc, f"{name}: 5K-interval checkpointing should beat nothing"
        # ...and overhead decreases monotonically with the interval.
        assert ckpt[500] > ckpt[1000] > ckpt[5000] > ckpt[10000]
        # Long intervals approach the plain adaptive time (within 25%).
        assert ckpt[10000] <= adaptive * 1.25
