"""A3 (ablation): manager thread placement.

Nine simulation threads on eight contexts force one context to host two
threads.  If the manager is *pinned* there, its companion core thread
becomes a permanent laggard and every sync handoff converts the clock
drift into simulated time — unbounded-slack error explodes.  With OS
load balancing (the default) the burden is spread and the error stays in
the paper's single-digit regime.
"""

from repro.harness import ablation_manager_placement


def test_ablation_manager_placement(benchmark):
    result = benchmark.pedantic(ablation_manager_placement, rounds=1, iterations=1)
    print()
    print(result.render())

    by_benchmark = {}
    for name, placement, speedup, error in result.rows:
        by_benchmark.setdefault(name, {})[placement] = (speedup, error)

    for name, entries in by_benchmark.items():
        balanced_error = entries["balanced"][1]
        pinned_error = entries["pinned"][1]
        assert balanced_error < 0.15, f"{name}: balanced error out of regime"
        assert pinned_error > balanced_error, (
            f"{name}: pinning should worsen unbounded-slack accuracy"
        )
