"""Figure 4: simulation time vs violation rate.

Three series per benchmark — adaptive slack with 0 % and 5 % violation
bands (one point per target rate) and the fixed series (cycle-by-cycle
plus bounded slack S1..S9) — and the paper's reported shape:

- every adaptive run is faster than cycle-by-cycle;
- a bounded-slack run with a similar violation rate is faster than its
  adaptive counterpart (the cost of the adaptive "safety net");
- simulation time falls as the tolerated violation rate rises.
"""

from conftest import full_grids

from repro.harness import figure4
from repro.harness.experiments import FIGURE4_TARGETS
from repro.harness.export import ascii_scatter, figure_series

QUICK_TARGETS = FIGURE4_TARGETS[::2]
QUICK_FIXED = (1, 2, 4, 6, 8)
FULL_FIXED = (1, 2, 3, 4, 5, 6, 7, 8, 9)


def test_figure4(benchmark, runner):
    targets = FIGURE4_TARGETS if full_grids() else QUICK_TARGETS
    fixed = FULL_FIXED if full_grids() else QUICK_FIXED
    result = benchmark.pedantic(
        lambda: figure4(runner, targets=targets, fixed_bounds=fixed),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    print()
    print(
        ascii_scatter(
            figure_series(
                result, "barnes/adaptive-band0", "barnes/adaptive-band0.05",
                "barnes/fixed",
            ),
            x_label="violation rate",
            y_label="sim time (s)",
            title="Figure 4 (barnes): simulation time vs violation rate",
        )
    )

    for name in ("barnes", "fft", "lu", "water"):
        fixed_series = result.series[f"{name}/fixed"]
        cc_rate, cc_time = fixed_series[0]
        assert cc_rate == 0.0  # cycle-by-cycle is violation-free

        for band in ("0", "0.05"):
            adaptive = result.series[f"{name}/adaptive-band{band}"]
            # Adaptive slack always runs faster than cycle-by-cycle.
            assert all(time < cc_time for _, time in adaptive)
            # Higher tolerated rates are not slower (within 10% noise).
            assert adaptive[-1][1] <= adaptive[0][1] * 1.10

    # Bounded slack at a similar violation rate beats adaptive (the price
    # of the adaptive "safety net").  The paper states this as a general
    # observation; assert it pooled across benchmarks.
    dominated = 0
    comparable = 0
    for name in ("barnes", "fft", "lu", "water"):
        adaptive = result.series[f"{name}/adaptive-band0.05"]
        fixed_sorted = sorted(result.series[f"{name}/fixed"][1:])  # by rate
        for rate, time in adaptive:
            candidates = [t for r, t in fixed_sorted if r <= rate * 1.5]
            if candidates:
                comparable += 1
                if min(candidates) <= time:
                    dominated += 1
    assert comparable > 0
    assert dominated / comparable >= 0.5, (
        "bounded slack should usually beat adaptive at similar violation rates "
        f"({dominated}/{comparable})"
    )
