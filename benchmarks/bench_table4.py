"""Table 4: average distance from interval start to the first violation.

Shape: the rollback distance D_r is a sizable fraction of the interval
(so a rollback wastes real work), and it does not exceed the interval.
"""

from repro.harness import table4
from repro.harness.experiments import INTERVALS


def test_table4(benchmark, runner):
    result = benchmark.pedantic(lambda: table4(runner), rounds=1, iterations=1)
    print()
    print(result.render())

    intervals = INTERVALS[1:]
    for row in result.rows:
        name, values = row[0], row[1:]
        for interval, distance in zip(intervals, values):
            if distance == "-":
                continue  # no violating interval at this setting
            assert 0 <= distance <= interval, (
                f"{name}: D_r {distance} outside [0, {interval}]"
            )
    # At least some configurations must violate (else Tables 3-5 are moot).
    measured = [v for row in result.rows for v in row[1:] if v != "-"]
    assert measured
