"""E4 (extension): hierarchical manager organization.

The paper: "If the manager thread becomes a bottleneck, then it should be
organized hierarchically."  Shape checks: sub-managers progressively
offload the top manager's per-event consolidation work (top-manager busy
time falls monotonically-ish), the simulated execution is unaffected, and
end-to-end time stays within noise of the flat manager at this scale —
consistent with the paper's note that the manager's average work is much
less than each core thread's.
"""

from repro.harness import hierarchy


def test_hierarchy(benchmark):
    result = benchmark.pedantic(hierarchy, rounds=1, iterations=1)
    print()
    print(result.render())

    by_subs = {row[0]: row for row in result.rows}
    flat = by_subs[0]
    deepest = by_subs[max(by_subs)]
    # Offload: top-manager busy time shrinks with sub-managers.
    assert deepest[2] < flat[2] * 0.95, "hierarchy failed to offload the top manager"
    # Sub-managers actually did work.
    assert deepest[3] > 0
    # End-to-end time stays in the same regime (manager not yet the
    # bottleneck at this scale).
    assert deepest[1] < flat[1] * 1.3
