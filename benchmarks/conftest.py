"""Shared fixtures for the benchmark suite.

One :class:`ExperimentRunner` is shared across every bench in the session,
so experiments that reuse base runs (every table needs the cycle-by-cycle
reference; Table 5 reuses Tables 2-4's checkpoint runs) hit the cache.

Environment knobs:

- ``REPRO_BENCH_FULL=1`` — run the full paper-sized grids (slower);
  otherwise trimmed grids that preserve every reported shape are used.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import ExperimentRunner


def full_grids() -> bool:
    """True when the full experiment grids were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide cached experiment runner (paper 8-core target)."""
    return ExperimentRunner(verbose=False)
