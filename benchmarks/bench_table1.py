"""Table 1: the benchmark roster and scaled input sets."""

from repro.harness import table1


def test_table1(benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    print()
    print(result.render())

    names = [row[0] for row in result.rows]
    assert names == ["barnes", "fft", "lu", "water"]
    for _, paper_input, repro_input in result.rows:
        assert paper_input
        assert repro_input
