"""Figure 3: bus and cache-map violation rates vs the slack bound.

Regenerates both panels (3a: bus, 3b: map) for the four Table-1
benchmarks and checks the paper's reported shape:

- bus violations grow with the slack bound and then plateau;
- map violations are much rarer (>= an order of magnitude at the plateau)
  and only appear at larger bounds.
"""

from conftest import full_grids

from repro.harness import figure3
from repro.harness.export import ascii_scatter, figure_series

QUICK_BOUNDS = (1, 4, 16, 60, 250, 1000)
FULL_BOUNDS = (1, 2, 4, 8, 16, 30, 60, 120, 250, 500, 1000)


def test_figure3(benchmark, runner):
    bounds = FULL_BOUNDS if full_grids() else QUICK_BOUNDS
    result = benchmark.pedantic(
        lambda: figure3(runner, bounds=bounds), rounds=1, iterations=1
    )
    print()
    print(result.render())
    print()
    print(
        ascii_scatter(
            figure_series(result, "barnes/bus", "barnes/map"),
            x_label="slack bound",
            y_label="violations/cycle",
            log_x=True,
            title="Figure 3 (barnes): violation rate vs slack bound",
        )
    )

    ratios = []
    for name in ("barnes", "fft", "lu", "water"):
        bus = dict(result.series[f"{name}/bus"])
        cache_map = dict(result.series[f"{name}/map"])
        # 3a: growth then plateau — the largest bound is not the small one.
        assert bus[max(bounds)] > bus[min(bounds)]
        # plateau: the last two points are close (within 2x).
        tail = [bus[b] for b in sorted(bounds)[-2:]]
        assert tail[1] <= tail[0] * 2.0 + 1e-9
        # 3b: map violations rarer than bus at the plateau for every
        # benchmark; an order of magnitude on average (LU's tight
        # producer-consumer reuse keeps its per-benchmark gap smaller).
        if cache_map[max(bounds)] > 0:
            ratio = bus[max(bounds)] / cache_map[max(bounds)]
            ratios.append(ratio)
            assert ratio >= 2.5
        # small bounds: map violations negligible.
        assert cache_map[min(bounds)] <= bus[max(bounds)] * 0.05 + 1e-9
    if ratios:
        assert sum(ratios) / len(ratios) >= 5.0
