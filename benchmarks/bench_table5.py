"""Table 5: analytical estimate of speculative-slack simulation time.

Shape (the paper's conclusion): the estimated speculative time exceeds
cycle-by-cycle for every benchmark at both long intervals — speculation
does not pay unless violations become much rarer.
"""

from repro.harness import table5


def test_table5(benchmark, runner):
    result = benchmark.pedantic(lambda: table5(runner), rounds=1, iterations=1)
    print()
    print(result.render())

    for row in result.rows:
        name, cc, *estimates = row
        for estimate in estimates:
            # LU is the borderline case in the paper too (361 vs 343 s);
            # allow it to graze CC but never to beat it decisively.
            assert estimate > cc * 0.90, (
                f"{name}: speculation estimated to clearly beat CC "
                f"({estimate:.3f} vs {cc:.3f}) — not the paper's regime"
            )
