"""A2 (ablation): which violations speculation tracks.

The paper's section 5.2 closes by arguing that tracking only the rare,
high-impact cache-map violations (ignoring bus violations) could make
speculation viable.  Shape: map-only tracking rolls back no more often
than tracking everything, and is never slower.
"""

from repro.harness import ablation_tracked


def test_ablation_tracked(benchmark, runner):
    result = benchmark.pedantic(lambda: ablation_tracked(runner), rounds=1, iterations=1)
    print()
    print(result.render())

    by_benchmark = {}
    for name, tracked, rollbacks, t_s, ratio in result.rows:
        by_benchmark.setdefault(name, {})[tracked] = (rollbacks, t_s, ratio)

    for name, entries in by_benchmark.items():
        all_rollbacks, all_time, _ = entries["bus+map"]
        map_rollbacks, map_time, _ = entries["map"]
        assert map_rollbacks <= all_rollbacks, f"{name}: map-only rolled back more"
        assert map_time <= all_time * 1.05, f"{name}: map-only should not be slower"
