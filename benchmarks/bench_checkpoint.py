"""Checkpoint cost benchmark: copy-on-write capture vs. full deepcopy.

Drives the bench workload under the speculative scheme's state shapes and
measures, at each checkpoint boundary, the host cost of

- ``take_snapshot`` — the copy-on-write capture (dirty SoA pages + the
  residue deepcopy; ``repro.core.snapshot``),
- ``copy.deepcopy`` of the same state root — the historic checkpoint, and
- ``restore_snapshot`` — materializing a fresh root from the capture.

Boundaries are spaced ``interval`` scheduler picks apart (the kernel
averages about one target cycle per pick at the default batch size, so a
pick interval tracks the speculative scheme's cycle interval).  The
first capture of a run syncs every page ever written and is reported
separately; the steady-state mean covers the captures a speculative run
actually repeats.  Writes ``BENCH_checkpoint.json``.

Run directly::

    python benchmarks/bench_checkpoint.py
    python benchmarks/bench_checkpoint.py --intervals 500 2000 5000

Under pytest (``pytest benchmarks/bench_checkpoint.py``) a reduced sweep
checks the load-bearing inequality: steady-state COW capture must beat
the deepcopy it replaced.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import time
from typing import List, Optional

from repro import Simulation
from repro.config import HostConfig, SlackConfig, paper_target_config
from repro.core.checkpoint import restore_snapshot, take_snapshot
from repro.core.hostmodel import ThreadState
from repro.core.scheduler import Scheduler
from repro.harness.hostinfo import host_fingerprint
from repro.workloads import make_workload


def build_sim(cores: int) -> Simulation:
    """The speculative scheme's base (bounded slack) over a memory-heavy
    workload.

    The bench drives the scheduler directly and takes checkpoints itself
    at its own boundaries, so it runs the *base* scheme the speculative
    controller wraps — the state being captured (caches, queues, clocks,
    interpreters) is identical, without the controller's own checkpoint
    protocol competing with the measurements.  Checkpoint cost matters
    exactly when the memory system holds real state, so the workload's
    working set is sized to fill the L1s and most of the L2 (the paper
    benchmarks' footprints are cache-resident and would leave the
    full-copy baseline with nothing to copy).
    """
    return Simulation(
        make_workload(
            "synthetic",
            num_threads=cores,
            steps=500_000,
            private_lines=2048,
            shared_lines=512,
            shared_fraction=0.2,
            store_fraction=0.4,
            compute_per_step=2,
        ),
        scheme=SlackConfig(bound=8),
        target=paper_target_config(num_cores=cores),
        host=HostConfig(num_contexts=cores),
    )


def drive(scheduler: Scheduler, sim: Simulation, picks: int) -> bool:
    """Advance the host ``picks`` scheduler iterations; True while running."""
    for _ in range(picks):
        if sim.state.all_finished:
            return False
        thread, start = scheduler._pick()
        result = thread.runner.step(start)
        thread.context.clock = start + result.cost_ns
        thread.ready_time = thread.context.clock
        if thread is scheduler.manager_thread:
            scheduler._wake_cores(thread.context.clock)
        elif result.done:
            thread.state = ThreadState.DONE
            scheduler._parked.append(thread)
            scheduler._parked_dirty = True
        elif result.blocked:
            thread.state = ThreadState.BLOCKED
            scheduler._parked.append(thread)
            scheduler._parked_dirty = True
        else:
            scheduler._enqueue(thread)
    return True


def bench_interval(interval: int, cores: int, max_checkpoints: int) -> dict:
    """Alternate execution and capture; time both checkpoint flavors.

    The deepcopy is timed against the *same* pre-capture state the COW
    capture sees (deepcopy does not mutate, so measuring it first keeps
    the two operand-identical).
    """
    sim = build_sim(cores)
    scheduler = Scheduler(sim, sim.host)
    # Warm the caches before the first boundary so both checkpoint flavors
    # see a realistically populated memory system (a cold capture flatters
    # the full copy: there is nothing to copy yet).
    drive(scheduler, sim, 60_000)
    take_s: List[float] = []
    deep_s: List[float] = []
    pages: List[int] = []
    first_take_s: Optional[float] = None
    snapshot = None
    running = True
    while running and len(take_s) < max_checkpoints:
        running = drive(scheduler, sim, interval)
        state = sim.state
        t0 = time.perf_counter()
        clone = copy.deepcopy(state)
        t1 = time.perf_counter()
        snapshot = take_snapshot(state, boundary=0, host_time=0.0)
        t2 = time.perf_counter()
        del clone
        if first_take_s is None:
            # The first capture syncs every page written since __init__;
            # steady state starts at the second.
            first_take_s = t2 - t1
        else:
            take_s.append(t2 - t1)
            pages.append(snapshot.host_pages)
        deep_s.append(t1 - t0)
    restore_s: List[float] = []
    if snapshot is not None:
        # A snapshot restores repeatedly (speculative replay that violates
        # again); time a few round trips of the final one.
        for _ in range(5):
            r0 = time.perf_counter()
            restore_snapshot(snapshot)
            restore_s.append(time.perf_counter() - r0)
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    take_us = mean(take_s) * 1e6
    deep_us = mean(deep_s) * 1e6
    return {
        "interval": interval,
        "checkpoints": len(deep_s),
        "first_take_us": round((first_take_s or 0.0) * 1e6, 1),
        "take_mean_us": round(take_us, 1),
        "deepcopy_mean_us": round(deep_us, 1),
        "restore_mean_us": round(mean(restore_s) * 1e6, 1),
        "host_pages_mean": round(mean(pages), 1),
        "speedup_take_vs_deepcopy": round(deep_us / take_us, 1) if take_us else None,
    }


def run_bench_checkpoint(
    intervals=(500, 2000, 5000),
    cores: int = 4,
    max_checkpoints: int = 12,
    output: Optional[str] = "BENCH_checkpoint.json",
) -> dict:
    rows = []
    for interval in intervals:
        row = bench_interval(interval, cores, max_checkpoints)
        rows.append(row)
        print(
            f"  interval={interval:<6d} take {row['take_mean_us']:8.1f}us"
            f"  deepcopy {row['deepcopy_mean_us']:8.1f}us"
            f"  restore {row['restore_mean_us']:8.1f}us"
            f"  ({row['speedup_take_vs_deepcopy']}x)"
        )
    finest = min(rows, key=lambda r: r["interval"])
    doc = {
        "host": host_fingerprint(),
        "benchmark": "checkpoint",
        "workload": "synthetic",
        "cores": cores,
        "intervals": rows,
        "finest_interval": finest["interval"],
        "finest_speedup_take_vs_deepcopy": finest["speedup_take_vs_deepcopy"],
    }
    if output:
        with open(output, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {output} (finest interval {finest['interval']}: "
              f"{finest['speedup_take_vs_deepcopy']}x vs deepcopy)")
    return doc


def test_cow_capture_beats_deepcopy():
    """Steady-state COW capture must be cheaper than the deepcopy it replaced."""
    row = bench_interval(interval=500, cores=4, max_checkpoints=4)
    assert row["checkpoints"] >= 2
    assert row["take_mean_us"] < row["deepcopy_mean_us"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--intervals", type=int, nargs="+", default=[500, 2000, 5000])
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--max-checkpoints", type=int, default=12)
    parser.add_argument("--output", default="BENCH_checkpoint.json")
    args = parser.parse_args(argv)
    run_bench_checkpoint(
        intervals=args.intervals,
        cores=args.cores,
        max_checkpoints=args.max_checkpoints,
        output=args.output,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
