"""E5 (extension): the adaptive-quantum related-work baseline.

Paper section 6 contrasts its violation-driven adaptive slack with the
traffic-driven adaptive quantum of Falcon et al.  Shape checks: the
quantum baseline is violation-free but slower to adapt (barrier costs),
and both beat cycle-by-cycle.
"""

from repro.harness import adaptive_quantum_comparison


def test_adaptive_quantum(benchmark, runner):
    result = benchmark.pedantic(
        lambda: adaptive_quantum_comparison(runner), rounds=1, iterations=1
    )
    print()
    print(result.render())

    quantum_rows = [r for r in result.rows if "quantum" in r[1]]
    slack_rows = [r for r in result.rows if "quantum" not in r[1]]
    for name, scheme, speedup, error, rate in quantum_rows:
        # Under saturating traffic the controller pins the quantum at one
        # cycle and the scheme degenerates to cycle-by-cycle (barnes,
        # water); it must never be *slower* than CC beyond noise.
        assert speedup >= 0.95, f"{name}: adaptive quantum slower than CC"
        assert rate == 0.0, f"{name}: conservative service must be violation-free"
        assert error < 0.25, f"{name}: adaptive-quantum error out of family"
    # Violation-driven adaptation wins on at least half the benchmarks
    # (the paper's argument for the more direct error measure).
    slack_speedups = {r[0]: r[2] for r in slack_rows}
    wins = sum(
        1 for name, _, speedup, _, _ in quantum_rows
        if slack_speedups[name] >= speedup * 0.9
    )
    assert wins >= len(quantum_rows) // 2
