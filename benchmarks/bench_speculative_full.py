"""E1 (extension): full speculative execution, measured vs modeled.

The paper only estimated speculative slack with its analytical model; this
reproduction implements the complete mechanism (checkpoint, detect,
rollback, cycle-by-cycle replay).  Shape checks:

- the committed execution is free of tracked violations;
- measured speculative time, like the model, does not beat cycle-by-cycle
  at the baseline violation rate;
- the analytical model lands within a factor of ~2 of the measurement
  (it omits rollback cost and assumes steady-state F/D_r).
"""

from repro.harness import speculative_full


def test_speculative_full(benchmark, runner):
    result = benchmark.pedantic(lambda: speculative_full(runner), rounds=1, iterations=1)
    print()
    print(result.render())

    for name, interval, cc, model_ts, measured_ts, rollbacks, wasted in result.rows:
        assert measured_ts > 0
        assert rollbacks >= 0
        if rollbacks:
            assert wasted > 0
        # Speculation does not beat CC in this regime (paper's conclusion).
        assert measured_ts >= cc * 0.9, f"{name}@{interval}: speculation beat CC"
        # Model vs measurement agreement (order of magnitude).
        assert model_ts * 0.4 <= measured_ts <= model_ts * 2.5, (
            f"{name}@{interval}: model {model_ts:.3f}s vs measured {measured_ts:.3f}s"
        )
