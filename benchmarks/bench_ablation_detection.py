"""A1 (ablation): the cost of violation detection itself.

The paper notes that "the detection of violations takes place during
simulation and unavoidably disturbs the execution of SlackSim".  Shape:
detection costs a measurable but small fraction of simulation time.
"""

from repro.harness import ablation_detection


def test_ablation_detection(benchmark, runner):
    result = benchmark.pedantic(lambda: ablation_detection(runner), rounds=1, iterations=1)
    print()
    print(result.render())

    for name, off_time, on_time, overhead in result.rows:
        # Detection adds per-event host work; schedule noise can offset a
        # little of it, but it can never be a large win.
        assert on_time >= off_time * 0.97, f"{name}: detection cannot be a speedup"
        assert overhead < 0.30, f"{name}: detection overhead {overhead:.1%} implausibly large"
