"""Table 3: fraction of checkpoint intervals with at least one violation.

Shape: F grows with the checkpoint interval for every benchmark, and
benchmarks differ according to how clustered their violations are.
"""

from repro.harness import table3


def test_table3(benchmark, runner):
    result = benchmark.pedantic(lambda: table3(runner), rounds=1, iterations=1)
    print()
    print(result.render())

    fractions = {row[0]: row[1:] for row in result.rows}
    for name, values in fractions.items():
        assert all(0.0 <= v <= 1.0 for v in values)
        # F grows with the interval: strictly from the smallest to the
        # largest, with only small-sample dips (runs hold ~5-50 intervals,
        # not the paper's thousands) tolerated between neighbours.
        assert values[-1] >= values[0], f"{name}: F must grow with interval"
        for prev, nxt in zip(values, values[1:]):
            assert nxt >= prev - 0.12, f"{name}: F dropped {prev}->{nxt}"
    # Benchmarks differentiate: not all identical at the middle interval.
    middle = [values[1] for values in fractions.values()]
    assert max(middle) > min(middle)
