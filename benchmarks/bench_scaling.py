"""E3 (extension): simulating CMPs larger than the host.

The paper stops at 8 target cores on 8 host contexts and calls for
larger-scale runs (section 7).  Shape checks on 8/16/32-core targets
multiplexed onto the same 8-context host:

- absolute simulation times grow with target size;
- unbounded slack keeps beating cycle-by-cycle at every size (slack also
  absorbs the context-multiplexing imbalance).
"""

from conftest import full_grids

from repro.harness import scaling


def test_scaling(benchmark):
    core_counts = (8, 16, 32) if full_grids() else (8, 16)
    result = benchmark.pedantic(
        lambda: scaling(core_counts=core_counts), rounds=1, iterations=1
    )
    print()
    print(result.render())

    by_benchmark = {}
    for name, cores, cc, su, speedup, error in result.rows:
        by_benchmark.setdefault(name, []).append((cores, cc, su, speedup, error))

    for name, rows in by_benchmark.items():
        rows.sort()
        # Bigger targets cost more host time to simulate.
        cc_times = [cc for _, cc, _, _, _ in rows]
        assert cc_times == sorted(cc_times), f"{name}: CC time must grow with cores"
        for cores, _, _, speedup, error in rows:
            assert speedup > 1.3, f"{name}@{cores}: slack must keep paying off"
            assert error < 0.5, f"{name}@{cores}: SU error {error:.2%} out of family"
