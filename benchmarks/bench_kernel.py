"""Kernel-throughput benchmark: the hot-path perf + determinism gate.

Times the fixed workload matrix (CC / bounded / adaptive / speculative x
4-16 cores), asserts every run's report digest against the golden values
in ``benchmarks/golden_kernel.json``, and writes ``BENCH_kernel.json``
with machine-readable wall-time and steps/s metrics.

Run directly::

    python benchmarks/bench_kernel.py            # full matrix
    python benchmarks/bench_kernel.py --smoke    # CI-sized matrix

or via the CLI (same engine)::

    python -m repro bench [--smoke] [--update-golden]

Under pytest (``pytest benchmarks/bench_kernel.py``) the smoke matrix
runs as a digest-checked benchmark case.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.bench import run_bench


def test_kernel_smoke(benchmark):
    """Smoke matrix as a pytest-benchmark case; fails on digest drift."""
    doc = benchmark.pedantic(
        lambda: run_bench(smoke=True, output=None), rounds=1, iterations=1
    )
    assert all(r["golden"] == "ok" for r in doc["results"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--update-golden", action="store_true")
    parser.add_argument("--output", default="BENCH_kernel.json")
    parser.add_argument("--profile-calls", action="store_true")
    args = parser.parse_args(argv)
    run_bench(
        smoke=args.smoke,
        update_golden=args.update_golden,
        output=args.output,
        profile_calls=args.profile_calls,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
